"""Training tuner: partial parameter binding for fwd/dgrad/wgrad kernels
(Section 4.2, Figures 13 and 22).

Tuning the three training kernels independently costs ``O(K^3)``; sharing
one config for all three loses up to 10% end-to-end.  The paper's middle
ground binds two of the three:

* **workload-pattern oriented** (``BIND_FWD_DGRAD``): forward and dgrad
  share a config (they have the same workload pattern), wgrad is tuned
  separately — minimizes total kernel latency; best for *low-end* devices
  whose tensor:CUDA core gap is small (2080 Ti, 3x);
* **sparse-mapping oriented** (``BIND_DGRAD_WGRAD``): dgrad and wgrad share
  a config (they share the same maps) — minimizes mapping overhead; best
  for *high-parallelism* devices where mapping work on CUDA cores is
  relatively 16x more expensive (A100).

Both reduce complexity to ``O(K^2)``, and to ``O(K)`` in practice by
reusing the group tuner twice (Figure 13's "dummy initialization" trick —
here, by evaluating role subsets independently, which our additive latency
model makes exact).
"""

from __future__ import annotations

import dataclasses
import enum
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpusim.engine import estimate_trace_us
from repro.hw.specs import DeviceSpec, get_device
from repro.nn.mapping_cost import map_reorder_trace
from repro.nn.context import (
    ExecutionContext,
    GroupPolicy,
    LayerConfig,
    Role,
    Signature,
)
from repro.nn.module import Module
from repro.precision import Precision
from repro.sparse.tensor import SparseTensor
from repro.tune.groups import LayerRecord, discover_groups
from repro.tune.space import DesignSpace, TORCHSPARSEPP_SPACE
from repro.tune.tuner import SparseAutotuner

#: tensor:CUDA throughput ratio above which mapping overhead dominates and
#: the sparse-mapping-oriented scheme wins (A100 is 16x, 2080 Ti is 3x).
HIGH_PARALLELISM_RATIO = 8.0


class BindingScheme(enum.Enum):
    """Which training kernels share dataflow parameters (Figure 13)."""

    BIND_ALL = "bind_all"
    BIND_FWD_DGRAD = "bind_fwd_dgrad"  # workload-pattern oriented
    BIND_DGRAD_WGRAD = "bind_dgrad_wgrad"  # sparse-mapping oriented


def pick_binding_scheme(device: "DeviceSpec | str") -> BindingScheme:
    """The paper's device rule: scheme 2 for high-end GPUs, scheme 1 else."""
    device = get_device(device)
    if device.tensor_to_cuda_ratio >= HIGH_PARALLELISM_RATIO:
        return BindingScheme.BIND_DGRAD_WGRAD
    return BindingScheme.BIND_FWD_DGRAD


@dataclasses.dataclass
class TrainingTuningReport:
    """Per-group role assignments and the end-to-end training latency."""

    scheme: BindingScheme
    end_to_end_us: float
    bound_all_us: float
    tuning_seconds: float

    @property
    def improvement_over_bound(self) -> float:
        return self.bound_all_us / self.end_to_end_us if self.end_to_end_us else 1.0


#: Roles bound together under each scheme: (groups of roles tuned jointly).
_SCHEME_ROLE_SETS: Dict[BindingScheme, Tuple[Tuple[Role, ...], ...]] = {
    BindingScheme.BIND_ALL: ((Role.FORWARD, Role.DGRAD, Role.WGRAD),),
    BindingScheme.BIND_FWD_DGRAD: (
        (Role.FORWARD, Role.DGRAD),
        (Role.WGRAD,),
    ),
    BindingScheme.BIND_DGRAD_WGRAD: (
        (Role.FORWARD,),
        (Role.DGRAD, Role.WGRAD),
    ),
}


class TrainingTuner:
    """Tune per-group configs for training under a binding scheme."""

    def __init__(
        self,
        space: DesignSpace = TORCHSPARSEPP_SPACE,
        default: Optional[LayerConfig] = None,
        scheme: Optional[BindingScheme] = None,
    ):
        self.space = space
        self.default = default or LayerConfig()
        self.scheme = scheme  # None = pick by device

    # ------------------------------------------------------------------ #
    def _roles_latency_us(
        self,
        tuner: SparseAutotuner,
        records: Sequence[LayerRecord],
        config: LayerConfig,
        roles: Tuple[Role, ...],
        device: DeviceSpec,
        precision: Precision,
        cache: Dict,
    ) -> float:
        """Latency of the given roles of a group under one config.

        Adds the map-restructure penalty when a role set's map storage
        order differs from the forward structure (the mapping-overhead half
        of the binding tradeoff).
        """
        total = 0.0
        for i, record in enumerate(records):
            for role in roles:
                total += tuner._layer_latency_us(
                    record, config, device, precision,
                    charge_mapping=(i == 0), cache=cache, role=role,
                )
        return total

    def tune(
        self,
        model: Module,
        samples: Sequence[SparseTensor],
        device: "DeviceSpec | str" = "a100",
        precision: "Precision | str" = Precision.FP16,
    ) -> Tuple[GroupPolicy, TrainingTuningReport]:
        """Tune training configs; model must be in training mode usage."""
        device = get_device(device)
        precision = Precision.parse(precision)
        scheme = self.scheme or pick_binding_scheme(device)
        start = time.perf_counter()
        tuner = SparseAutotuner(space=self.space, default=self.default)

        ordered: List[Signature] = []
        per_sample: List[Dict[Signature, List[LayerRecord]]] = []
        for sample in samples:
            ctx = ExecutionContext(
                device=device, precision=precision, simulate_only=True
            )
            sigs, by_sig = discover_groups(model, sample, ctx)
            per_sample.append(by_sig)
            for sig in sigs:
                if sig not in ordered:
                    ordered.append(sig)

        cache: Dict = {}

        def cost(sig: Signature, config: LayerConfig, roles) -> float:
            return sum(
                self._roles_latency_us(
                    tuner, by_sig.get(sig, []), config, roles,
                    device, precision, cache,
                )
                for by_sig in per_sample
            ) / len(per_sample)

        def prep_penalty(sig: Signature, dgrad_cfg: LayerConfig,
                         wgrad_cfg: LayerConfig) -> float:
            """Backward map-preparation cost when dgrad and wgrad use
            different configs: the two backward kernels share the same
            maps (Figure 13), so a bound pair prepares them once while a
            decoupled pair prepares them twice."""
            if dgrad_cfg == wgrad_cfg:
                return 0.0
            total = 0.0
            for by_sig in per_sample:
                records = by_sig.get(sig, [])
                if not records:
                    continue
                total += estimate_trace_us(
                    map_reorder_trace(records[0].kmap, "bwd_prep"),
                    device, precision,
                )
            return total / len(per_sample)

        assignment: Dict[Signature, Dict[Role, LayerConfig]] = {}
        all_roles = (Role.FORWARD, Role.DGRAD, Role.WGRAD)
        bound_all_total = 0.0
        tuned_total = 0.0
        for sig in ordered:
            # Reference: best single config shared by all three roles
            # (one config -> one map structure -> no penalty).
            bound_all_total += min(
                cost(sig, c, all_roles) for c in self.space
            )
            role_sets = _SCHEME_ROLE_SETS[scheme]
            if len(role_sets) == 1:
                best = min(self.space, key=lambda c: cost(sig, c, all_roles))
                by_role = {role: best for role in all_roles}
                best_total = cost(sig, best, all_roles)
            else:
                # Paper's O(K^2): joint search over the two bound sets,
                # including the backward map-preparation penalty when
                # dgrad and wgrad end up with different configs.
                set_a, set_b = role_sets
                best_total = float("inf")
                by_role = {}
                for cfg_a in self.space:
                    cost_a = cost(sig, cfg_a, set_a)
                    for cfg_b in self.space:
                        cfg_of = {
                            **{r: cfg_a for r in set_a},
                            **{r: cfg_b for r in set_b},
                        }
                        total = (
                            cost_a
                            + cost(sig, cfg_b, set_b)
                            + prep_penalty(
                                sig, cfg_of[Role.DGRAD], cfg_of[Role.WGRAD]
                            )
                        )
                        if total < best_total:
                            best_total = total
                            by_role = cfg_of
            assignment[sig] = by_role
            tuned_total += best_total

        report = TrainingTuningReport(
            scheme=scheme,
            end_to_end_us=tuned_total,
            bound_all_us=bound_all_total,
            tuning_seconds=time.perf_counter() - start,
        )
        return GroupPolicy(assignment, default=self.default), report
