"""Group-based configuration tuning (Section 4.2, Figure 12).

The tuner discovers layer groups with a probe pass over a sample subset of
the target workload, then greedily tunes group by group: candidates for the
``k``-th group are evaluated by *end-to-end simulated latency* with the
first ``k-1`` groups fixed to their tuned configs and later groups at the
default.  End-to-end measurement (rather than kernel-only time) is the
paper's central methodological point: mapping overhead — bitmask
computation, sorting, reordering, partial-sum reduction — must be inside
the objective, or the tuner picks sorted dataflows that lose end to end
(Tables 3/4).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpusim.engine import estimate_trace_us
from repro.hw.specs import DeviceSpec, get_device
from repro.kernels.registry import trace_dataflow
from repro.nn.context import (
    ExecutionContext,
    GroupPolicy,
    LayerConfig,
    Role,
    Signature,
)
from repro.nn.module import Module
from repro.precision import Precision
from repro.sparse.tensor import SparseTensor
from repro.tune.groups import LayerRecord, discover_groups
from repro.tune.space import DesignSpace, TORCHSPARSEPP_SPACE


@dataclasses.dataclass
class GroupResult:
    """Tuning outcome for one layer group."""

    signature: Signature
    chosen: LayerConfig
    candidate_latencies_us: List[float]
    num_layers: int


@dataclasses.dataclass
class TuningReport:
    """Everything the tuner decided, for inspection and EXPERIMENTS.md."""

    groups: List[GroupResult]
    end_to_end_us: float
    default_us: float
    tuning_seconds: float

    @property
    def speedup_over_default(self) -> float:
        return self.default_us / self.end_to_end_us if self.end_to_end_us else 1.0

    def describe(self) -> str:
        lines = [
            f"tuned {len(self.groups)} groups in {self.tuning_seconds:.1f}s: "
            f"{self.default_us / 1e3:.2f} ms -> {self.end_to_end_us / 1e3:.2f} ms "
            f"({self.speedup_over_default:.2f}x)"
        ]
        for g in self.groups:
            lines.append(
                f"  {g.signature}: {g.chosen.describe()} "
                f"({g.num_layers} layers)"
            )
        return "\n".join(lines)


class SparseAutotuner:
    """Search the design space for the best per-group configuration."""

    def __init__(
        self,
        space: DesignSpace = TORCHSPARSEPP_SPACE,
        default: Optional[LayerConfig] = None,
    ):
        self.space = space
        self.default = default or LayerConfig()

    # ------------------------------------------------------------------ #
    def _layer_latency_us(
        self,
        record: LayerRecord,
        config: LayerConfig,
        device: DeviceSpec,
        precision: Precision,
        charge_mapping: bool,
        cache: Dict,
        role: Role = Role.FORWARD,
    ) -> float:
        key = (id(record.kmap), record.c_in, record.c_out, id(config),
               charge_mapping, role, device.name, precision)
        if key not in cache:
            kmap = record.kmap
            c_in, c_out = record.c_in, record.c_out
            if role is Role.DGRAD:
                if "transposed" not in kmap.analysis_cache:
                    kmap.analysis_cache["transposed"] = kmap.transposed()
                kmap = kmap.analysis_cache["transposed"]
                c_in, c_out = c_out, c_in
            if role is Role.WGRAD:
                from repro.kernels.wgrad import wgrad_trace

                from repro.kernels.registry import Dataflow

                trace = wgrad_trace(
                    kmap, record.c_in, record.c_out,
                    schedule=config.schedule, precision=precision,
                    gathered=config.dataflow.value.startswith("gather"),
                    sorted_maps=(
                        config.dataflow is Dataflow.IMPLICIT_GEMM
                        and config.ig_config.sort
                    ),
                    tensor_cores=config.tensor_cores,
                )
            else:
                trace = trace_dataflow(
                    config.dataflow, kmap, c_in, c_out,
                    schedule=config.schedule, precision=precision,
                    ig_config=config.ig_config,
                    tensor_cores=config.tensor_cores,
                    charge_mapping=charge_mapping,
                )
            cache[key] = estimate_trace_us(trace, device, precision)
        return cache[key]

    def _structure_conversion_us(
        self,
        record: LayerRecord,
        config: LayerConfig,
        device: DeviceSpec,
        precision: Precision,
        cache: Dict,
    ) -> float:
        """Map storage-order conversion cost (once per group).

        Weight-stationary dataflows on hash-built (output-stationary) maps
        and implicit GEMM on transposed (weight-stationary) maps both pay
        one reordering pass — the asymmetry behind Figure 18's per-group
        dataflow choices.
        """
        kmap = record.kmap
        if kmap.volume <= 1:
            return 0.0
        if config.dataflow.weight_stationary == kmap.native_weight_stationary:
            return 0.0
        key = ("convert", id(kmap), config.dataflow.weight_stationary,
               device.name, precision)
        if key not in cache:
            from repro.nn.mapping_cost import map_reorder_trace

            cache[key] = estimate_trace_us(
                map_reorder_trace(kmap, "convert"), device, precision
            )
        return cache[key]

    def _group_latency_us(
        self,
        records: Sequence[LayerRecord],
        config: LayerConfig,
        device: DeviceSpec,
        precision: Precision,
        cache: Dict,
    ) -> float:
        total = 0.0
        for i, record in enumerate(records):
            total += self._layer_latency_us(
                record, config, device, precision,
                charge_mapping=(i == 0), cache=cache,
            )
            if i == 0:
                total += self._structure_conversion_us(
                    record, config, device, precision, cache
                )
        return total

    # ------------------------------------------------------------------ #
    def tune(
        self,
        model: Module,
        samples: Sequence[SparseTensor],
        device: "DeviceSpec | str" = "a100",
        precision: "Precision | str" = Precision.FP16,
    ) -> Tuple[GroupPolicy, TuningReport]:
        """Tune ``model`` on sample inputs; returns (policy, report).

        ``samples`` plays the role of the paper's "random subset of the
        target workload (e.g. 100 scenes on Waymo)"; latencies are averaged
        across samples.
        """
        device = get_device(device)
        precision = Precision.parse(precision)
        start = time.perf_counter()

        # Probe every sample once; union the group structure.
        ordered: List[Signature] = []
        per_sample_records: List[Dict[Signature, List[LayerRecord]]] = []
        for sample in samples:
            ctx = ExecutionContext(
                device=device, precision=precision, simulate_only=True
            )
            sigs, by_sig = discover_groups(model, sample, ctx)
            per_sample_records.append(by_sig)
            for sig in sigs:
                if sig not in ordered:
                    ordered.append(sig)

        cache: Dict = {}

        def group_cost(sig: Signature, config: LayerConfig) -> float:
            return sum(
                self._group_latency_us(
                    by_sig.get(sig, []), config, device, precision, cache
                )
                for by_sig in per_sample_records
            ) / len(per_sample_records)

        # Greedy group-by-group exhaustive search on end-to-end latency.
        assignment: Dict[Signature, Dict[Role, LayerConfig]] = {}
        results: List[GroupResult] = []
        default_total = sum(group_cost(sig, self.default) for sig in ordered)
        for k, sig in enumerate(ordered):

            def end_to_end(candidate: LayerConfig) -> float:
                total = 0.0
                for j, other in enumerate(ordered):
                    if j < k:
                        config = assignment[other][Role.FORWARD]
                    elif j == k:
                        config = candidate
                    else:
                        config = self.default
                    total += group_cost(other, config)
                return total

            latencies = [end_to_end(c) for c in self.space]
            best_index = min(range(len(latencies)), key=latencies.__getitem__)
            chosen = self.space.candidates[best_index]
            assignment[sig] = {Role.FORWARD: chosen}
            results.append(
                GroupResult(
                    signature=sig,
                    chosen=chosen,
                    candidate_latencies_us=latencies,
                    num_layers=sum(
                        len(by_sig.get(sig, []))
                        for by_sig in per_sample_records
                    ),
                )
            )

        tuned_total = sum(
            group_cost(sig, assignment[sig][Role.FORWARD]) for sig in ordered
        )
        report = TuningReport(
            groups=results,
            end_to_end_us=tuned_total,
            default_us=default_total,
            tuning_seconds=time.perf_counter() - start,
        )
        return GroupPolicy(assignment, default=self.default), report
