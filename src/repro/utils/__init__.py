"""Small shared utilities (RNG handling, formatting, validation)."""

from repro.utils.rng import as_rng
from repro.utils.format import format_si, format_table, geomean
from repro.utils.validation import (
    check_2d,
    check_dtype_floating,
    check_positive,
    check_same_length,
)

__all__ = [
    "as_rng",
    "format_si",
    "format_table",
    "geomean",
    "check_2d",
    "check_dtype_floating",
    "check_positive",
    "check_same_length",
]
