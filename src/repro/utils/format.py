"""Human-readable formatting helpers for experiment reports."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

_SI_PREFIXES = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.5e9) == '2.50G'``."""
    magnitude = abs(value)
    for threshold, prefix in _SI_PREFIXES:
        if magnitude >= threshold:
            return f"{value / threshold:.{digits}f}{prefix}{unit}"
    return f"{value:.{digits}f}{unit}"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises ``ValueError`` on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned text table (used by the benchmark harness)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
