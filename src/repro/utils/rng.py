"""Random-number-generator plumbing.

All stochastic code in the library accepts ``seed: int | np.random.Generator``
and normalises through :func:`as_rng`, so experiments are reproducible
end-to-end from a single integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh non-deterministic generator; an ``int`` seeds a
    new PCG64 generator; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
