"""Argument-validation helpers that raise library-specific exceptions."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def check_2d(array: np.ndarray, name: str) -> np.ndarray:
    """Require a 2-D array; returns it for chaining."""
    if array.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {array.shape}")
    return array


def check_same_length(a: np.ndarray, b: np.ndarray, a_name: str, b_name: str) -> None:
    """Require two arrays to agree on their first dimension."""
    if len(a) != len(b):
        raise ShapeError(
            f"{a_name} and {b_name} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def check_dtype_floating(array: np.ndarray, name: str) -> None:
    """Require a floating-point array."""
    if not np.issubdtype(array.dtype, np.floating):
        raise ShapeError(f"{name} must be floating point, got {array.dtype}")


def check_positive(value: float, name: str) -> None:
    """Require a strictly positive scalar."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
