"""Deliberately unsound cache-site schema for keycheck negative tests.

``register_unsound()`` plants a trace-memo variant whose declared key
omits ``launch.flops`` — a field the priced computation demonstrably
reads — so ``python -m repro keycheck --register
tests.broken_caches:register_unsound`` must exit 1 with an
``unkeyed-read`` for exactly that path.  CI runs this to prove the
analyzer actually fails on a broken key rather than rubber-stamping
whatever is registered.
"""

from __future__ import annotations

from repro.analyze.provenance import (
    KeyComponent,
    KeySchema,
    ReadLog,
    register_cache_site,
    wrap,
)
from repro.gpusim.engine import PRICING_FIELDS

SITE = "test.broken-trace-memo"

#: Every pricing field except the one the planted key "forgets".
_FORGOTTEN = "flops"
_PARTIAL_FIELDS = tuple(f for f in PRICING_FIELDS if f != _FORGOTTEN)


def _probe_broken() -> ReadLog:
    import numpy as np

    from repro.gpusim.engine import estimate_launch_us
    from repro.hw.specs import get_device
    from repro.kernels.registry import Dataflow, trace_dataflow
    from repro.precision import Precision
    from repro.sparse.kmap import build_kernel_map

    log = ReadLog()
    rng = np.random.default_rng(0)
    coords = np.unique(
        np.concatenate(
            [
                np.zeros((120, 1), np.int32),
                rng.integers(0, 10, (120, 3)).astype(np.int32),
            ],
            axis=1,
        ),
        axis=0,
    )
    kmap = build_kernel_map(coords, kernel_size=3, stride=1)
    trace = trace_dataflow(
        Dataflow.IMPLICIT_GEMM, kmap, 16, 16, precision="fp16"
    )
    device = wrap(get_device("a100"), "device", log)
    total = sum(
        estimate_launch_us(wrap(launch, "launch", log), device, Precision.FP16)
        for launch in trace
    )
    assert total > 0.0
    return log


def register_unsound() -> None:
    """Register the broken schema (called via ``keycheck --register``)."""
    register_cache_site(
        KeySchema(
            site=SITE,
            description=(
                "trace memo whose key forgets launch.flops (negative "
                "fixture: must be reported as an unkeyed read)"
            ),
            components=(
                KeyComponent(
                    "partial_signature",
                    covers=tuple(f"launch.{f}" for f in _PARTIAL_FIELDS),
                ),
                KeyComponent("device", covers=("device",)),
                KeyComponent("precision", note="by value"),
            ),
            probe=_probe_broken,
        )
    )
