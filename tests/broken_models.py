"""Deliberately broken models for the static-analysis tests and CLI.

``BrokenSkipNet`` packs the three hazard classes the linter must catch in
one small network:

* the skip connection concatenates tensors on different coordinate
  strides (stride-2 encoder output with the stride-1 stem output) —
  ``stride-mismatch``, error;
* the interior width of 100 channels pads to 112 on the 16-wide
  tensor-core tile (10.7% padding waste) — ``tile-alignment``, warning;
* linted at FP32 with the default tensor-core schedule on a tensor-core
  device — ``dataflow-precision``, warning.
"""

from __future__ import annotations

from repro.analyze import register_handler
from repro.nn.blocks import ConvBlock
from repro.nn.conv import SparseConv3d
from repro.nn.join import ConcatSkip
from repro.nn.module import Module


class BrokenSkipNet(Module):
    """Stem -> stride-2 down -> concat with the (stride-1!) stem output."""

    def __init__(self, seed: int = 0):
        super().__init__()
        self.stem = ConvBlock(4, 100, 3, label="stem", seed=seed)
        self.down = ConvBlock(
            100, 100, kernel_size=2, stride=2, label="down", seed=seed + 1
        )
        self.skip = ConcatSkip(label="skip")
        self.head = SparseConv3d(
            200, 19, kernel_size=1, label="head", seed=seed + 2
        )

    def forward(self, x, ctx):
        s = self.stem(x, ctx)
        d = self.down(s, ctx)
        # Bug under test: d is on stride 2, s on stride 1 — at runtime the
        # point counts differ and ConcatSkip raises mid-batch.
        joined = self.skip.forward(d, s, ctx)
        return self.head(joined, ctx)


@register_handler(BrokenSkipNet)
def _trace_broken_skip_net(tracer, module, x, path):
    s = tracer.trace(module.stem, x, f"{path}.stem")
    d = tracer.trace(module.down, s, f"{path}.down")
    joined = tracer.concat(module.skip, d, s, f"{path}.skip")
    return tracer.trace(module.head, joined, f"{path}.head")


def build_broken() -> BrokenSkipNet:
    """Factory for ``python -m repro lint tests.broken_models:build_broken``."""
    return BrokenSkipNet()
