"""Deliberately broken stream schedules for the happens-before verifier.

Mirrors ``broken_traces.py``: each tamper function takes a *verified
race-free* schedule of a real workload trace and breaks exactly one of
the properties :func:`repro.analyze.hb.check_schedule` certifies:

* :func:`drop_required_sync` — a load-bearing sync event is deleted, so
  a cross-stream dependence loses its only happens-before ordering (the
  classic forgotten ``cudaStreamWaitEvent``);
* :func:`wrong_stream_wait` — a sync event's wait is rewired to a launch
  on a different stream, so the event fires but blocks the wrong queue
  while the true dependent races ahead;
* :func:`reorder_placement` — two same-stream dependent launches swap
  their time windows, violating the stream's FIFO program order.

Every tamper *searches* for a mutation that the verifier provably
rejects (asserting if none exists), so the fixtures stay adversarial as
the scheduler evolves.

Run as a module to write a tampered schedule document for the CLI
exit-1 smoke::

    python -m tests.broken_schedules dropped-sync /tmp/bad.json
    python -m repro depgraph SK-M-0.5 --scale 0.1 --batch 1 \
        --schedule-json /tmp/bad.json --verify   # exits 1
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analyze.depgraph import DependenceGraph
from repro.analyze.hb import SyncEvent, check_schedule
from repro.data.datasets import make_sample
from repro.gpusim.trace import KernelLaunch
from repro.hw import get_device
from repro.models import get_workload
from repro.nn.context import ExecutionContext
from repro.opt.schedule import (
    StreamSchedule,
    best_schedule,
    schedule_report_json,
)
from repro.precision import Precision

#: The workload/trace parameters shared with the CLI smoke (must match
#: ``repro depgraph SK-M-0.5 --scale 0.1 --batch 1`` exactly).
WORKLOAD_ID = "SK-M-0.5"
SCALE = 0.1
SEED = 0
DEVICE = "a100"
PRECISION = "fp16"
STREAMS = 4


def workload_trace() -> List[KernelLaunch]:
    """The deterministic trace the CLI smoke verifies against."""
    workload = get_workload(WORKLOAD_ID)
    model = workload.build_model()
    model.eval()
    ctx = ExecutionContext(
        device=get_device(DEVICE),
        precision=Precision.parse(PRECISION),
        simulate_only=True,
    )
    sample = make_sample(
        workload.dataset, frames=workload.frames, seed=SEED, scale=SCALE
    )
    model(sample, ctx)
    return list(ctx.trace)


def healthy_schedule(
    launches: List[KernelLaunch], graph: DependenceGraph
) -> StreamSchedule:
    schedule = best_schedule(
        launches, get_device(DEVICE), Precision.parse(PRECISION),
        STREAMS, graph,
    )
    assert check_schedule(launches, schedule, graph) == [], (
        "fixture base schedule must verify clean"
    )
    assert schedule.events, "fixture needs cross-stream sync events to break"
    return schedule


def _rejected(
    launches: List[KernelLaunch],
    graph: DependenceGraph,
    schedule: StreamSchedule,
) -> bool:
    return bool(check_schedule(launches, schedule, graph))


def drop_required_sync(
    launches: List[KernelLaunch],
    graph: DependenceGraph,
    schedule: StreamSchedule,
) -> StreamSchedule:
    """Delete one sync event whose removal the verifier provably catches.

    Every surviving event is irredundant (the scheduler transitively
    reduced the set), so dropping any event guarding a dependence edge
    un-orders it; we still search and assert to stay robust.
    """
    for victim in schedule.events:
        tampered = dataclasses.replace(
            schedule,
            events=tuple(
                e for e in schedule.events if e.event_id != victim.event_id
            ),
        )
        if _rejected(launches, graph, tampered):
            return tampered
    raise AssertionError("no sync event is load-bearing; fixture is broken")


def wrong_stream_wait(
    launches: List[KernelLaunch],
    graph: DependenceGraph,
    schedule: StreamSchedule,
) -> StreamSchedule:
    """Rewire one event's wait side to a launch on a different stream.

    The wait-side stream claim is kept consistent with the new launch,
    so the event is structurally well-formed — only the *ordering* is
    now wrong: the original dependent launch races its producer.
    """
    by_index = {a.index: a for a in schedule.assignments}
    for victim in schedule.events:
        for assignment in schedule.assignments:
            if assignment.stream == victim.wait_stream:
                continue  # keep the wait on a *different* stream
            if assignment.index == victim.record_index:
                continue
            if assignment.start_us < by_index[victim.record_index].end_us:
                continue  # would be malformed-sync, not a race
            tampered_event = SyncEvent(
                event_id=victim.event_id,
                record_index=victim.record_index,
                record_stream=victim.record_stream,
                wait_index=assignment.index,
                wait_stream=assignment.stream,
            )
            tampered = dataclasses.replace(
                schedule,
                events=tuple(
                    tampered_event if e.event_id == victim.event_id else e
                    for e in schedule.events
                ),
            )
            if _rejected(launches, graph, tampered):
                return tampered
    raise AssertionError("could not rewire any wait; fixture is broken")


def reorder_placement(
    launches: List[KernelLaunch],
    graph: DependenceGraph,
    schedule: StreamSchedule,
) -> StreamSchedule:
    """Swap the time windows of two same-stream dependent launches.

    Stream program order is derived from start times, so the dependent
    launch now issues *before* its producer on their shared FIFO stream.
    """
    by_index = {a.index: a for a in schedule.assignments}
    for edge in graph.edges:
        src = by_index[edge.src]
        dst = by_index[edge.dst]
        if src.stream != dst.stream or src.start_us == dst.start_us:
            continue
        swapped = {
            edge.src: dataclasses.replace(
                src, start_us=dst.start_us, end_us=dst.end_us
            ),
            edge.dst: dataclasses.replace(
                dst, start_us=src.start_us, end_us=src.end_us
            ),
        }
        tampered = dataclasses.replace(
            schedule,
            assignments=tuple(
                swapped.get(a.index, a) for a in schedule.assignments
            ),
        )
        if _rejected(launches, graph, tampered):
            return tampered
    raise AssertionError("no same-stream dependent pair to swap")


TamperFunc = Callable[
    [List[KernelLaunch], DependenceGraph, StreamSchedule], StreamSchedule
]

TAMPERS: Dict[str, TamperFunc] = {
    "dropped-sync": drop_required_sync,
    "wrong-stream-wait": wrong_stream_wait,
    "reordered-placement": reorder_placement,
}


def tampered_schedule(kind: str) -> Tuple[List[KernelLaunch], StreamSchedule]:
    """Build the workload trace and one tampered schedule of it."""
    launches = workload_trace()
    graph = DependenceGraph.build(launches)
    schedule = healthy_schedule(launches, graph)
    return launches, TAMPERS[kind](launches, graph, schedule)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2 or argv[0] not in TAMPERS:
        kinds = ", ".join(sorted(TAMPERS))
        print(
            f"usage: python -m tests.broken_schedules {{{kinds}}} OUT.json",
            file=sys.stderr,
        )
        return 2
    kind, out_path = argv
    _, schedule = tampered_schedule(kind)
    with open(out_path, "w") as fh:
        json.dump(schedule_report_json(schedule), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"{kind}: tampered schedule written to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
