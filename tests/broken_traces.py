"""Deliberately broken kernel traces for the dependence-analyzer tests.

Mirrors ``broken_models.py``: each fixture seeds one launch-level hazard
the depgraph analyzer must catch, starting from a *healthy* unfused
gather-GEMM-scatter trace (per offset: gather writes ``ws:gs_in.k``,
GEMM reads it and writes ``ws:gs_out.k``, scatter consumes that into the
accumulator):

* :func:`dropped_gather_trace` — the first gather launch is dropped, so
  its GEMM reads a workspace buffer no launch ever writes —
  ``uninitialized-read``;
* :func:`reordered_scatter_trace` — a scatter is hoisted above its GEMM,
  reading the staging buffer before its first write — ``raw-order``;
* :func:`leaked_staging_trace` — a scatter is dropped, leaving its
  GEMM's staging buffer written but never consumed —
  ``workspace-lifetime``.

``BrokenTraceNet`` wraps any of these in a model whose forward injects
the trace into the execution context, and the ``build_*`` factories make
them lintable from the CLI:
``python -m repro lint tests.broken_traces:build_dropped_gather``.
"""

from __future__ import annotations

import numpy as np

from repro.analyze import register_handler
from repro.gpusim.trace import KernelTrace
from repro.kernels.gather_scatter import gather_gemm_scatter_trace
from repro.nn.module import Module
from repro.sparse.kmap import build_kernel_map


def healthy_trace(seed: int = 0) -> KernelTrace:
    """A clean unfused gather-GEMM-scatter trace over a small scene."""
    rng = np.random.default_rng(seed)
    spatial = rng.integers(0, 10, size=(200, 3))
    batch = np.zeros((200, 1), dtype=np.int64)
    coords = np.unique(
        np.concatenate([batch, spatial], axis=1).astype(np.int32), axis=0
    )
    kmap = build_kernel_map(coords, kernel_size=3)
    return gather_gemm_scatter_trace(kmap, c_in=8, c_out=16)


def _first_index(trace: KernelTrace, prefix: str) -> int:
    for i, launch in enumerate(trace):
        if launch.name.startswith(prefix):
            return i
    raise AssertionError(f"no launch named {prefix}* in trace")


def dropped_gather_trace(seed: int = 0) -> KernelTrace:
    """Drop the first gather: its GEMM reads an unwritten ``ws:`` buffer."""
    launches = list(healthy_trace(seed))
    del launches[_first_index(KernelTrace(launches), "gather/")]
    return KernelTrace(launches)


def reordered_scatter_trace(seed: int = 0) -> KernelTrace:
    """Hoist the first scatter above its GEMM: read-before-first-write."""
    launches = list(healthy_trace(seed))
    scatter = _first_index(KernelTrace(launches), "scatter/")
    gemm = _first_index(KernelTrace(launches), "gemm/")
    assert gemm < scatter
    launch = launches.pop(scatter)
    launches.insert(gemm, launch)
    return KernelTrace(launches)


def leaked_staging_trace(seed: int = 0) -> KernelTrace:
    """Drop the first scatter: its GEMM's staging output is never read."""
    launches = list(healthy_trace(seed))
    del launches[_first_index(KernelTrace(launches), "scatter/")]
    return KernelTrace(launches)


class BrokenTraceNet(Module):
    """A model whose forward charges a pre-built (broken) kernel trace."""

    def __init__(self, trace: KernelTrace):
        super().__init__()
        self.injected = trace

    def forward(self, x, ctx):
        ctx.trace.extend(self.injected)
        return x


@register_handler(BrokenTraceNet)
def _trace_broken_trace_net(tracer, module, x, path):
    # Opaque to the symbolic walk: the hazard lives in the kernel trace,
    # not the module graph.
    return x


def build_dropped_gather() -> BrokenTraceNet:
    return BrokenTraceNet(dropped_gather_trace())


def build_reordered_scatter() -> BrokenTraceNet:
    return BrokenTraceNet(reordered_scatter_trace())


def build_leaked_staging() -> BrokenTraceNet:
    return BrokenTraceNet(leaked_staging_trace())
