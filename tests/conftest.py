"""Suite-wide fixtures.

``sanitize_all_traces`` routes every latency estimate made anywhere in the
test suite through the trace sanitizer
(:func:`repro.analyze.tracecheck.check_trace`) *and* the launch-level
dependence/liveness analyzer (:func:`repro.analyze.depgraph.check_depgraph`):
any trace with a structurally invalid launch, a use-before-def, a leaked
or under-accounted workspace buffer, an unordered conflicting write, or a
serialized latency below its own dependence critical path fails the test
that produced it, no matter which subsystem (models, tuner, baselines,
serving) emitted it.

Multi-stream estimates are additionally verified by the happens-before
race detector (:func:`repro.analyze.hb.check_schedule`): the schedule
actually used at the requested stream count must order every dependence
edge via stream program order plus explicit sync events.
"""

from __future__ import annotations

import importlib

import pytest

from repro.analyze.depgraph import check_depgraph
from repro.analyze.hb import check_schedule
from repro.analyze.tracecheck import check_trace
from repro.gpusim import engine as _engine
from repro.opt.schedule import best_schedule
from repro.precision import Precision

#: Modules that import ``estimate_trace_us`` by name; each bound copy gets
#: wrapped so no trace escapes the sanitizer.
_PATCH_MODULES = (
    "repro.gpusim.engine",
    "repro.nn.context",
    "repro.graph.engines",
    "repro.tune.tuner",
    "repro.tune.training",
    "repro.baselines.flatformer",
    "repro.codegen.cost",
    "repro.codegen.tiling",
    "repro.apps.mae",
)

_real_estimate_trace_us = _engine.estimate_trace_us


def _checked_estimate_trace_us(trace, device, precision, streams=1, **kwargs):
    # ``estimate_trace_us`` accepts ``Precision | str`` and parses
    # internally; the analyzers take a parsed ``Precision``, so parse here
    # too — a raw string would silently mis-price tensor-core launches in
    # the cross-validation weights (``gemm_tflops`` compares by identity).
    parsed = Precision.parse(precision)
    violations = check_trace(trace)
    violations += check_depgraph(trace, device, parsed)
    if streams > 1 and len(list(trace)):
        schedule = best_schedule(trace, device, parsed, streams)
        violations += check_schedule(trace, schedule)
    if violations:
        details = "\n".join(f"  - {v}" for v in violations)
        raise AssertionError(
            f"trace sanitizer found {len(violations)} violation(s) in a "
            f"trace submitted for latency estimation:\n{details}"
        )
    return _real_estimate_trace_us(trace, device, precision, streams, **kwargs)


@pytest.fixture(autouse=True)
def sanitize_all_traces(monkeypatch):
    for module_name in _PATCH_MODULES:
        module = importlib.import_module(module_name)
        if getattr(module, "estimate_trace_us", None) is not None:
            monkeypatch.setattr(
                module, "estimate_trace_us", _checked_estimate_trace_us
            )
    yield


@pytest.fixture(scope="session", autouse=True)
def cache_key_soundness():
    """Audit + fuzz every registered cache site once per test session.

    Runs before any function-scoped monkeypatching exists (session scope),
    so the probes observe the real engine entry points; the audits are
    memoized inside :mod:`repro.analyze.provenance`, making later lint
    invocations (e.g. serving admission) reuse these results.
    """
    from repro.analyze.provenance import audit_cache_sites, fuzz_all

    audits = audit_cache_sites()
    unsound = {
        site: list(audit.unkeyed)
        for site, audit in audits.items()
        if audit.unkeyed
    }
    assert not unsound, f"unkeyed cache-site reads: {unsound}"
    reports = fuzz_all(seed=0)
    failed = {
        site: list(report.failures)
        for site, report in reports.items()
        if report.failures
    }
    assert not failed, f"cache differential fuzzing failed: {failed}"
    yield
