"""Suite-wide fixtures.

``sanitize_all_traces`` routes every latency estimate made anywhere in the
test suite through the trace sanitizer
(:func:`repro.analyze.tracecheck.check_trace`) *and* the launch-level
dependence/liveness analyzer (:func:`repro.analyze.depgraph.check_depgraph`):
any trace with a structurally invalid launch, a use-before-def, a leaked
or under-accounted workspace buffer, an unordered conflicting write, or a
serialized latency below its own dependence critical path fails the test
that produced it, no matter which subsystem (models, tuner, baselines,
serving) emitted it.

Multi-stream estimates are additionally verified by the happens-before
race detector (:func:`repro.analyze.hb.check_schedule`): the schedule
actually used at the requested stream count must order every dependence
edge via stream program order plus explicit sync events.
"""

from __future__ import annotations

import importlib

import pytest

from repro.analyze.depgraph import check_depgraph
from repro.analyze.hb import check_schedule
from repro.analyze.tracecheck import check_trace
from repro.gpusim import engine as _engine
from repro.opt.schedule import best_schedule

#: Modules that import ``estimate_trace_us`` by name; each bound copy gets
#: wrapped so no trace escapes the sanitizer.
_PATCH_MODULES = (
    "repro.gpusim.engine",
    "repro.nn.context",
    "repro.graph.engines",
    "repro.tune.tuner",
    "repro.tune.training",
    "repro.baselines.flatformer",
    "repro.codegen.cost",
    "repro.codegen.tiling",
    "repro.apps.mae",
)

_real_estimate_trace_us = _engine.estimate_trace_us


def _checked_estimate_trace_us(trace, device, precision, streams=1):
    violations = check_trace(trace)
    violations += check_depgraph(trace, device, precision)
    if streams > 1 and len(list(trace)):
        schedule = best_schedule(trace, device, precision, streams)
        violations += check_schedule(trace, schedule)
    if violations:
        details = "\n".join(f"  - {v}" for v in violations)
        raise AssertionError(
            f"trace sanitizer found {len(violations)} violation(s) in a "
            f"trace submitted for latency estimation:\n{details}"
        )
    return _real_estimate_trace_us(trace, device, precision, streams)


@pytest.fixture(autouse=True)
def sanitize_all_traces(monkeypatch):
    for module_name in _PATCH_MODULES:
        module = importlib.import_module(module_name)
        if getattr(module, "estimate_trace_us", None) is not None:
            monkeypatch.setattr(
                module, "estimate_trace_us", _checked_estimate_trace_us
            )
    yield
