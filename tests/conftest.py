"""Suite-wide fixtures.

``sanitize_all_traces`` routes every latency estimate made anywhere in the
test suite through the trace sanitizer
(:func:`repro.analyze.tracecheck.check_trace`): any trace with a
structurally invalid launch fails the test that produced it, no matter
which subsystem (models, tuner, baselines, serving) emitted it.
"""

from __future__ import annotations

import importlib

import pytest

from repro.analyze.tracecheck import check_trace
from repro.gpusim import engine as _engine

#: Modules that import ``estimate_trace_us`` by name; each bound copy gets
#: wrapped so no trace escapes the sanitizer.
_PATCH_MODULES = (
    "repro.gpusim.engine",
    "repro.nn.context",
    "repro.graph.engines",
    "repro.tune.tuner",
    "repro.tune.training",
    "repro.baselines.flatformer",
    "repro.codegen.cost",
    "repro.codegen.tiling",
    "repro.apps.mae",
)

_real_estimate_trace_us = _engine.estimate_trace_us


def _checked_estimate_trace_us(trace, device, precision):
    violations = check_trace(trace)
    if violations:
        details = "\n".join(f"  - {v}" for v in violations)
        raise AssertionError(
            f"trace sanitizer found {len(violations)} violation(s) in a "
            f"trace submitted for latency estimation:\n{details}"
        )
    return _real_estimate_trace_us(trace, device, precision)


@pytest.fixture(autouse=True)
def sanitize_all_traces(monkeypatch):
    for module_name in _PATCH_MODULES:
        module = importlib.import_module(module_name)
        if getattr(module, "estimate_trace_us", None) is not None:
            monkeypatch.setattr(
                module, "estimate_trace_us", _checked_estimate_trace_us
            )
    yield
