"""Static analyzer tests: IR propagation and the lint-rule catalogue."""

import pytest

from repro.analyze import (
    LintContext,
    Severity,
    lint_model,
    lint_workload,
    max_severity,
    register_handler,
    run_rules,
    trace_model,
)
from repro.hw import get_device
from repro.models import get_workload
from repro.models.minkunet import MinkUNet
from repro.nn.blocks import ConvBlock
from repro.nn.conv import SparseConv3d
from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.precision import Precision
from tests.broken_models import BrokenSkipNet


def _lint_ctx(model, in_channels=4, device="a100", precision="fp16",
              stride=None):
    ir = trace_model(model, in_channels=in_channels, stride=stride)
    return LintContext(
        ir=ir,
        device=get_device(device),
        precision=Precision.parse(precision),
        policy=None,
    )


class TestSymbolicPropagation:
    def test_minkunet_ir_shape(self):
        model = MinkUNet(in_channels=4, num_classes=19, width=0.5)
        ir = trace_model(model, in_channels=4)
        convs = ir.conv_nodes()
        # stem 2 + 4*(down + 2 res * (2 + maybe proj)) + 4*(up + ...) + head
        assert len(convs) == 50
        assert ir.output is not None
        assert ir.output.channels == 19
        # The decoder returns to the input stride.
        assert ir.output.stride == (1, 1, 1)
        # Deepest encoder stage reaches stride 16.
        assert max(n.out_stride for n in convs) == (16, 16, 16)
        assert not ir.unvisited_paths
        assert not ir.channel_mismatches

    def test_minkunet_transposed_convs_find_forward_maps(self):
        ir = trace_model(MinkUNet(width=0.5), in_channels=4)
        events = {e.event for e in ir.map_events}
        assert "transposed_reuse" in events
        assert "missing_forward_map" not in events
        assert "bad_upsample" not in events

    def test_minkunet_signature_groups_are_shared(self):
        ir = trace_model(MinkUNet(width=0.5), in_channels=4)
        groups = ir.signature_groups()
        # Submanifold k3s1 layers at stride 1 share one signature group.
        subm_s1 = groups[((1, 1, 1), (3, 3, 3), (1, 1, 1), False)]
        assert len(subm_s1) > 4

    def test_boundary_marking(self):
        ir = trace_model(MinkUNet(width=0.5), in_channels=4)
        convs = ir.conv_nodes()
        assert convs[0].boundary == "input"
        assert convs[-1].boundary == "output"
        assert all(n.boundary == "" for n in convs[1:-1])

    def test_channel_mismatch_recorded(self):
        model = Sequential(
            SparseConv3d(4, 8, 3, label="a"),
            SparseConv3d(16, 8, 3, label="b"),
        )
        ir = trace_model(model, in_channels=4)
        assert len(ir.channel_mismatches) == 1
        mismatch = ir.channel_mismatches[0]
        assert mismatch.expected == 16 and mismatch.got == 8

    def test_unknown_module_is_opaque_and_children_unvisited(self):
        class Mystery(Module):
            def __init__(self):
                super().__init__()
                self.inner = SparseConv3d(4, 8, 3, label="inner")

        ir = trace_model(Mystery(), in_channels=4)
        assert any(n.kind == "opaque" for n in ir.nodes)
        assert "inner" in ir.unvisited_paths


class TestLintRules:
    def test_bundled_workloads_lint_clean(self):
        for wid in ("SK-M-0.5", "SK-M-1.0", "WM-C-1f"):
            findings = lint_workload(wid, device="a100", precision="fp16")
            worst = max_severity(findings)
            assert worst is None or worst is Severity.INFO, (
                wid,
                [f.format() for f in findings],
            )

    def test_broken_model_reports_all_three_hazards(self):
        findings = lint_model(
            BrokenSkipNet(),
            in_channels=4,
            device="a100",
            precision="fp32",
        )
        # Findings are sorted most severe first; keep the worst per rule.
        by_rule = {}
        for f in findings:
            by_rule.setdefault(f.rule, f)
        assert by_rule["stride-mismatch"].severity is Severity.ERROR
        assert by_rule["tile-alignment"].severity is Severity.WARNING
        assert by_rule["dataflow-precision"].severity is Severity.WARNING
        assert max_severity(findings) is Severity.ERROR
        # Findings arrive most severe first.
        ranks = [f.severity.rank for f in findings]
        assert ranks == sorted(ranks, reverse=True)

    def test_tile_alignment_reports_padding_waste(self):
        findings = lint_model(
            BrokenSkipNet(), in_channels=4, device="a100", precision="fp16"
        )
        tile = [f for f in findings if f.rule == "tile-alignment"
                and f.severity is Severity.WARNING]
        assert tile, [f.format() for f in findings]
        # 100 channels pad to 112: 12/112 = 10.7% waste.
        assert tile[0].data["padded"] == 112
        assert tile[0].data["waste_pct"] == pytest.approx(10.71, abs=0.01)

    def test_boundary_channels_stay_info(self):
        findings = lint_workload("SK-M-0.5", precision="fp16")
        tile = [f for f in findings if f.rule == "tile-alignment"]
        assert tile and all(f.severity is Severity.INFO for f in tile)
        assert all(f.data["boundary"] for f in tile)

    def test_missing_forward_map_detected(self):
        model = Sequential(
            SparseConv3d(8, 8, 2, stride=2, transposed=True, label="up")
        )
        ctx = _lint_ctx(model, in_channels=8, stride=(2, 2, 2))
        findings = run_rules(ctx, rules=["missing-forward-map"])
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "no matching forward map" in findings[0].message

    def test_bad_upsample_detected(self):
        model = Sequential(
            SparseConv3d(8, 8, 2, stride=2, transposed=True, label="up")
        )
        ctx = _lint_ctx(model, in_channels=8)  # stride (1,1,1): indivisible
        findings = run_rules(ctx, rules=["missing-forward-map"])
        assert len(findings) == 1
        assert "cannot upsample" in findings[0].message

    def test_down_then_up_is_clean(self):
        model = Sequential(
            SparseConv3d(8, 8, 2, stride=2, label="down"),
            SparseConv3d(8, 8, 2, stride=2, transposed=True, label="up"),
        )
        ctx = _lint_ctx(model, in_channels=8)
        assert run_rules(ctx, rules=["missing-forward-map"]) == []

    def test_fp32_on_tensor_core_schedule_warns(self):
        model = Sequential(SparseConv3d(16, 16, 3, label="c"))
        findings = run_rules(
            _lint_ctx(model, in_channels=16, precision="fp32"),
            rules=["dataflow-precision"],
        )
        assert findings and findings[0].severity is Severity.WARNING
        assert "CUDA cores" in findings[0].message

    def test_tf32_without_tf32_path_warns(self):
        findings = run_rules(
            _lint_ctx(
                Sequential(SparseConv3d(16, 16, 3, label="c")),
                in_channels=16,
                device="rtx2080ti",
                precision="tf32",
            ),
            rules=["dataflow-precision"],
        )
        assert findings and findings[0].severity is Severity.WARNING

    def test_fp16_on_tensor_cores_is_clean(self):
        findings = run_rules(
            _lint_ctx(
                Sequential(SparseConv3d(16, 16, 3, label="c")),
                in_channels=16,
                precision="fp16",
            ),
            rules=["dataflow-precision"],
        )
        assert findings == []

    def test_kmap_reuse_across_broken_cache_lineage(self):
        class TwoCaches(Module):
            def __init__(self):
                super().__init__()
                self.a = SparseConv3d(4, 8, 3, label="a")
                self.b = SparseConv3d(4, 8, 3, label="b")

        @register_handler(TwoCaches)
        def _trace_two_caches(tracer, module, x, path):
            xa = tracer.trace(module.a, x, f"{path}.a")
            # Simulates rebuilding the SparseTensor from raw coordinates:
            # the same map key is built again in a fresh cache scope.
            tracer.trace(module.b, tracer.fresh_cache(x), f"{path}.b")
            return xa

        findings = run_rules(
            _lint_ctx(TwoCaches(), in_channels=4), rules=["kmap-reuse"]
        )
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING
        assert "built 2 times" in findings[0].message

    def test_shared_cache_has_no_kmap_reuse_finding(self):
        model = Sequential(
            SparseConv3d(4, 8, 3, label="a"), SparseConv3d(8, 8, 3, label="b")
        )
        assert run_rules(
            _lint_ctx(model, in_channels=4), rules=["kmap-reuse"]
        ) == []

    def test_dead_submodule_detected(self):
        class HasDead(Module):
            def __init__(self):
                super().__init__()
                self.used = SparseConv3d(4, 8, 3, label="used")
                self.unused = ConvBlock(8, 8, 3, label="unused")

        @register_handler(HasDead)
        def _trace_has_dead(tracer, module, x, path):
            return tracer.trace(module.used, x, f"{path}.used")

        findings = run_rules(
            _lint_ctx(HasDead(), in_channels=4), rules=["dead-submodule"]
        )
        # Only the top-most unvisited subtree is reported, not each child.
        assert len(findings) == 1
        assert findings[0].path == "unused"
        assert findings[0].severity is Severity.WARNING

    def test_unknown_rule_rejected(self):
        ctx = _lint_ctx(MinkUNet(width=0.5), in_channels=4)
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_rules(ctx, rules=["no-such-rule"])

    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse(Severity.INFO) is Severity.INFO
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_finding_to_dict_round_trips(self):
        findings = lint_workload("SK-M-0.5", precision="fp16")
        for f in findings:
            d = f.to_dict()
            assert d["rule"] == f.rule
            assert d["severity"] in ("info", "warning", "error")
            assert isinstance(d["data"], dict)


class TestLintWorkloadEntryPoint:
    def test_uses_dataset_in_channels(self):
        workload = get_workload("WM-C-1f")
        assert workload.dataset_config.in_channels == 5
        findings = lint_workload("WM-C-1f", precision="fp16")
        assert all(f.rule != "channel-mismatch" for f in findings)

    def test_unknown_workload_raises_with_choices(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown workload"):
            lint_workload("XX-nope")
