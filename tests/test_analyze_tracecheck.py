"""Trace sanitizer tests: structural invariants, conservation checks, and
the scatter write-race detector."""

import numpy as np
import pytest

from repro.analyze.tracecheck import (
    assert_trace_ok,
    check_conv_trace,
    check_scatter_races,
    check_trace,
    scatter_conflicts,
)
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.kernels import (
    fetch_on_demand_trace,
    gather_gemm_scatter_trace,
    implicit_gemm_trace,
)
from repro.sparse.kmap import build_kernel_map


def random_kmap(seed: int, n=200, extent=10):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    return build_kernel_map(coords, kernel_size=3)


@pytest.fixture(scope="module")
def kmap():
    return random_kmap(0)


class TestStructuralChecks:
    def test_clean_trace_passes(self, kmap):
        assert check_trace(gather_gemm_scatter_trace(kmap, 8, 8)) == []

    def test_negative_bytes_flagged(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        # KernelLaunch only validates at construction; mutate post hoc to
        # model a buggy kernel model.
        trace.launches[0].dram_read_bytes = -1.0
        violations = check_trace(trace)
        assert any(v.invariant == "non-negative" for v in violations)

    def test_non_finite_flops_flagged(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        trace.launches[1].flops = float("nan")
        violations = check_trace(trace)
        assert any(v.invariant == "finite-fields" for v in violations)

    def test_zero_ctas_flagged(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        trace.launches[0].ctas = 0
        violations = check_trace(trace)
        assert any(v.invariant == "cta-count" for v in violations)

    def test_bad_efficiency_flagged(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        trace.launches[0].compute_efficiency = 1.5
        violations = check_trace(trace)
        assert any(v.invariant == "compute-efficiency" for v in violations)

    def test_empty_name_flagged(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        trace.launches[0].name = ""
        violations = check_trace(trace)
        assert any(v.invariant == "launch-name" for v in violations)

    def test_assert_trace_ok_raises_with_details(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        trace.launches[0].ctas = 0
        with pytest.raises(AssertionError, match="cta-count"):
            assert_trace_ok(trace)


class TestScatterConflicts:
    def test_matches_brute_force_from_pairs(self, kmap):
        offsets = list(range(kmap.volume))
        touched = np.concatenate(
            [out_idx for _, out_idx in kmap.pairs()]
        )
        expected = len(touched) - len(np.unique(touched))
        assert scatter_conflicts(kmap, offsets) == expected

    def test_single_offset_is_conflict_free(self, kmap):
        # Each output row appears at most once per nbmap column, so a
        # per-offset scatter never races with itself.
        for k in range(kmap.volume):
            assert scatter_conflicts(kmap, [k]) == 0

    def test_dense_map_conflicts(self, kmap):
        # A reasonably dense map must have cross-offset overlap.
        assert scatter_conflicts(kmap, list(range(kmap.volume))) > 0


class TestScatterRaceDetector:
    def test_synthetic_non_atomic_overlapping_scatter_caught(self, kmap):
        """The acceptance scenario: a fused scatter writing every pair as a
        plain (non-atomic) store over overlapping output rows is a race."""
        c_out = 8
        racing = KernelTrace()
        racing.add(
            KernelLaunch(
                name="scatter/fused",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=4.0 * kmap.total_pairs * c_out,
                dram_write_bytes=4.0 * kmap.total_pairs * c_out,
                atomic_write_bytes=0.0,
                ctas=4,
            )
        )
        violations = check_scatter_races(racing, kmap, c_out)
        assert len(violations) == 1
        assert violations[0].invariant == "scatter-write-race"
        assert "data race" in violations[0].message

    def test_fused_gather_scatter_carries_enough_atomics(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8, fused=True)
        assert check_scatter_races(trace, kmap, 8) == []
        fused = trace.filter_name("scatter/fused").launches[0]
        conflicts = scatter_conflicts(kmap, list(range(kmap.volume)))
        assert fused.atomic_write_bytes == pytest.approx(4.0 * conflicts * 8)

    def test_unfused_per_offset_scatters_are_race_free(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8, fused=False)
        assert check_scatter_races(trace, kmap, 8) == []

    def test_fetch_on_demand_all_atomic_passes(self, kmap):
        for fused in (True, False):
            trace = fetch_on_demand_trace(kmap, 8, 8, block_fused=fused)
            assert check_scatter_races(trace, kmap, 8) == []

    def test_writeback_launches_are_exempt(self, kmap):
        # Writebacks copy a dense accumulator row-per-row; even with zero
        # atomic bytes they must not be treated as racing scatters.
        wb = KernelTrace()
        wb.add(
            KernelLaunch(
                name="fetch_on_demand/writeback",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=1.0,
                dram_write_bytes=1.0,
                ctas=1,
            )
        )
        assert check_scatter_races(wb, kmap, 8) == []

    def test_stripping_atomics_from_real_trace_is_caught(self, kmap):
        trace = fetch_on_demand_trace(kmap, 8, 8, block_fused=True)
        fused = trace.filter_name("fused").launches[0]
        fused.atomic_write_bytes = 0.0
        fused.dram_write_bytes = 4.0 * kmap.total_pairs * 8
        violations = check_scatter_races(trace, kmap, 8)
        assert len(violations) == 1
        assert violations[0].launch == "fetch_on_demand/fused"


class TestConvConservation:
    def test_atomic_bound_violation_detected(self, kmap):
        trace = fetch_on_demand_trace(kmap, 8, 8)
        fused = trace.filter_name("fused").launches[0]
        fused.atomic_write_bytes = 10.0 * 4.0 * kmap.total_pairs * 8
        violations = check_conv_trace(trace, kmap, 8, 8)
        assert any(v.invariant == "atomic-write-bound" for v in violations)

    def test_undercounted_flops_detected(self, kmap):
        trace = implicit_gemm_trace(kmap, 8, 8)
        for launch in trace:
            if launch.kind is LaunchKind.GEMM:
                launch.flops = 1.0
        violations = check_conv_trace(trace, kmap, 8, 8)
        assert any(v.invariant == "flop-conservation" for v in violations)

    def test_missing_reads_detected(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        for launch in trace:
            launch.dram_read_bytes = 0.0
        violations = check_conv_trace(trace, kmap, 8, 8)
        assert any(
            v.invariant == "gather-read-accounting" for v in violations
        )

    def test_missing_writes_detected(self, kmap):
        trace = gather_gemm_scatter_trace(kmap, 8, 8)
        for launch in trace:
            launch.dram_write_bytes = 0.0
            launch.atomic_write_bytes = 0.0
        violations = check_conv_trace(trace, kmap, 8, 8)
        assert any(
            v.invariant == "scatter-write-accounting" for v in violations
        )
