"""Tests for the MAE future-application (2-D sparse convolution)."""

import numpy as np
import pytest

from repro.apps import MaskedImageEncoder, mae_speedup_vs_dense, masked_image_tensor
from repro.errors import ConfigError
from repro.nn import ExecutionContext


class TestMaskedImageTensor:
    def test_visible_fraction(self):
        x = masked_image_tensor(image_size=64, patch_size=4, mask_ratio=0.75)
        grid = 64 // 4
        assert x.num_points == pytest.approx(grid * grid * 0.25, abs=1)

    def test_coordinates_in_grid(self):
        x = masked_image_tensor(image_size=64, patch_size=8, mask_ratio=0.5)
        assert x.coords[:, 1:].max() < 8
        assert x.coords[:, 1:].min() >= 0
        assert x.ndim == 2

    def test_batched_images(self):
        x = masked_image_tensor(
            image_size=32, patch_size=4, mask_ratio=0.5, batch_size=3
        )
        assert x.batch_size == 3

    def test_no_duplicate_patches_per_image(self):
        x = masked_image_tensor(image_size=32, patch_size=4, mask_ratio=0.5)
        assert len(np.unique(x.coords, axis=0)) == x.num_points

    def test_validation(self):
        with pytest.raises(ConfigError):
            masked_image_tensor(mask_ratio=1.0)
        with pytest.raises(ConfigError):
            masked_image_tensor(image_size=65, patch_size=4)
        with pytest.raises(ConfigError):
            masked_image_tensor(batch_size=0)


class TestMaskedImageEncoder:
    def test_forward_downsamples(self):
        x = masked_image_tensor(image_size=64, patch_size=4, mask_ratio=0.5)
        encoder = MaskedImageEncoder(in_channels=16, width=8, depth=1)
        y = encoder(x, ExecutionContext(simulate_only=True))
        assert y.stride == (4, 4)
        assert y.num_channels == 32

    def test_training_roundtrip(self):
        x = masked_image_tensor(image_size=32, patch_size=4, mask_ratio=0.5)
        encoder = MaskedImageEncoder(in_channels=16, width=8, depth=1)
        encoder.train()
        ctx = ExecutionContext(training=True, simulate_only=True)
        y = encoder(x, ctx)
        grad = encoder.backward(
            np.zeros(y.feats.shape, dtype=np.float16), ctx
        )
        assert grad.shape == x.feats.shape

    def test_2d_numerics_match_implicit_gemm(self):
        # The encoder uses the generic D-dimensional machinery; verify a
        # 2-D layer against brute force.
        from repro.sparse.kmap import build_kernel_map

        x = masked_image_tensor(image_size=16, patch_size=4, mask_ratio=0.3,
                                channels=3)
        kmap = build_kernel_map(x.coords, kernel_size=3)
        assert kmap.volume == 9


class TestSpeedupCurve:
    def test_monotone_in_mask_ratio(self):
        # Needs realistic scale: at tiny sizes everything is launch-bound
        # and the curve flattens (the same effect makes sparse MAE
        # pointless on small inputs in practice).
        speedups = [
            mae_speedup_vs_dense(r, image_size=128, batch_size=32)[2]
            for r in (0.0, 0.5, 0.9)
        ]
        assert speedups[0] < speedups[1] < speedups[2]
