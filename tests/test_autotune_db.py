"""Tests for the persistent tuning database (`repro.autotune.db`)."""

import dataclasses
import json

import pytest

from repro.autotune import (
    TuningDatabase,
    TuningEntry,
    TuningKey,
    layer_key,
    sparsity_bucket,
)
from repro.errors import ConfigError
from repro.kernels.base import SMALL_TILE
from repro.kernels.registry import Dataflow
from repro.nn.context import LayerConfig

SIG = ((1, 1, 1), (3, 3, 3), (1, 1, 1), False)


def make_key(device="a100", c_in=16, c_out=32, n=100_000, m=100_000, d=20.0):
    return TuningKey.make(
        device=device,
        signature=SIG,
        c_in=c_in,
        c_out=c_out,
        precision="fp16",
        num_inputs=n,
        num_outputs=m,
        mean_neighbors=d,
    )


def make_entry(measured=100.0, predicted=90.0, trials=1, **config_kwargs):
    return TuningEntry(
        config=LayerConfig(**config_kwargs),
        measured_us=measured,
        predicted_us=predicted,
        trials=trials,
    )


class TestKeys:
    def test_sparsity_bucket_quantizes_by_log2(self):
        # 100k and 130k voxels share a bucket; 10k does not.
        assert sparsity_bucket(100_000, 100_000, 20.0) == sparsity_bucket(
            130_000, 130_000, 25.0
        )
        assert sparsity_bucket(100_000, 100_000, 20.0) != sparsity_bucket(
            10_000, 10_000, 20.0
        )

    def test_bucket_handles_degenerate_inputs(self):
        # Zero-point scenes get the explicit -1 bucket, distinct from any
        # real (however small) scene.
        assert sparsity_bucket(0, 0, 0.0) == "n-1:m-1:d-1"
        assert sparsity_bucket(0, 0, 0.0) != sparsity_bucket(1, 1, 1.0)
        # Sub-unit densities share bucket 0 with density 1.
        assert sparsity_bucket(1, 1, 0.5) == sparsity_bucket(1, 1, 1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_bucket_rejects_non_finite_density(self, bad):
        with pytest.raises(ConfigError, match="mean_neighbors"):
            sparsity_bucket(100, 100, bad)

    def test_bucket_rejects_bad_counts_naming_the_field(self):
        with pytest.raises(ConfigError, match="num_inputs"):
            sparsity_bucket(-5, 100, 20.0)
        with pytest.raises(ConfigError, match="num_outputs"):
            sparsity_bucket(100, float("nan"), 20.0)
        with pytest.raises(ConfigError, match="num_inputs"):
            sparsity_bucket(True, 100, 20.0)

    def test_make_propagates_stat_validation(self):
        with pytest.raises(ConfigError, match="mean_neighbors"):
            make_key(d=float("nan"))
        with pytest.raises(ConfigError, match="num_inputs"):
            make_key(n=-3)

    def test_layer_key_includes_channels_and_precision(self):
        base = layer_key(SIG, 16, 32, "fp16")
        assert layer_key(SIG, 16, 64, "fp16") != base
        assert layer_key(SIG, 16, 32, "fp32") != base

    def test_make_normalizes_device_name(self):
        assert make_key(device="a100") == make_key(device="A100")

    def test_flat_parse_round_trip(self):
        key = make_key()
        assert TuningKey.parse(key.flat()) == key

    def test_parse_rejects_malformed(self):
        with pytest.raises(ConfigError):
            TuningKey.parse("only-one-part")


class TestEntryOrder:
    def test_lower_latency_beats(self):
        assert make_entry(measured=50.0).beats(make_entry(measured=60.0))
        assert not make_entry(measured=60.0).beats(make_entry(measured=50.0))

    def test_tie_breaks_deterministically(self):
        a = make_entry(measured=50.0, dataflow=Dataflow.IMPLICIT_GEMM)
        b = make_entry(measured=50.0, dataflow=Dataflow.GATHER_SCATTER)
        # Exactly one wins, and the relation is antisymmetric.
        assert a.beats(b) != b.beats(a)

    def test_round_trip(self):
        entry = make_entry(schedule=SMALL_TILE, gs_chunks=2)
        assert TuningEntry.from_dict(entry.to_dict()) == entry

    def test_malformed_entry_raises_config_error(self):
        with pytest.raises(ConfigError):
            TuningEntry.from_dict({"measured_us": 1.0})


class TestDatabase:
    def test_get_counts_hits_and_misses(self):
        db = TuningDatabase()
        key = make_key()
        assert db.get(key) is None
        db.put(key, make_entry())
        assert db.get(key) is not None
        assert (db.hits, db.misses) == (1, 1)
        assert db.hit_rate == 0.5

    def test_peek_does_not_count(self):
        db = TuningDatabase()
        db.peek(make_key())
        assert (db.hits, db.misses) == (0, 0)

    def test_put_keeps_better_existing_entry(self):
        db = TuningDatabase()
        key = make_key()
        best = make_entry(measured=10.0)
        db.put(key, best)
        kept = db.put(key, make_entry(measured=20.0))
        assert kept == best
        assert db.peek(key) == best

    def test_save_load_round_trip(self, tmp_path):
        db = TuningDatabase()
        db.put(make_key(), make_entry(schedule=SMALL_TILE))
        db.put(make_key(c_out=64), make_entry(measured=42.0, gs_chunks=2))
        path = tmp_path / "db.json"
        db.save(path)
        loaded = TuningDatabase.load(path)
        assert len(loaded) == 2
        assert list(loaded.items()) == list(db.items())

    def test_save_is_byte_deterministic(self, tmp_path):
        a, b = TuningDatabase(), TuningDatabase()
        # Insert in opposite orders: serialization must not care.
        keys = [make_key(), make_key(c_out=64), make_key(device="3090")]
        for key in keys:
            a.put(key, make_entry())
        for key in reversed(keys):
            b.put(key, make_entry())
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        a.save(pa)
        b.save(pb)
        assert pa.read_bytes() == pb.read_bytes()

    def test_load_missing_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            TuningDatabase.load(tmp_path / "missing.json")

    def test_load_or_create_starts_empty(self, tmp_path):
        db = TuningDatabase.load_or_create(tmp_path / "missing.json")
        assert len(db) == 0

    def test_corrupt_and_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            TuningDatabase.load(path)
        path.write_text(json.dumps({"schema": 999, "entries": {}}))
        with pytest.raises(ConfigError):
            TuningDatabase.load(path)


class TestMerge:
    def test_merge_adopts_new_and_better(self):
        a, b = TuningDatabase(), TuningDatabase()
        shared, only_b = make_key(), make_key(c_out=64)
        a.put(shared, make_entry(measured=100.0))
        b.put(shared, make_entry(measured=50.0))
        b.put(only_b, make_entry())
        adopted = a.merge(b)
        assert adopted == 2
        assert a.peek(shared).measured_us == 50.0
        assert only_b in a

    def test_merge_pools_trial_counts(self):
        a, b = TuningDatabase(), TuningDatabase()
        key = make_key()
        a.put(key, make_entry(measured=100.0, trials=3))
        b.put(key, make_entry(measured=50.0, trials=2))
        a.merge(b)
        assert a.peek(key).trials == 5
        # Losing direction pools too.
        c = TuningDatabase()
        c.put(key, make_entry(measured=100.0, trials=3))
        d = TuningDatabase()
        d.put(key, make_entry(measured=50.0, trials=2))
        d.merge(c)
        assert d.peek(key).trials == 5

    def test_merge_order_independent(self):
        def replica(measured, c_out):
            db = TuningDatabase()
            db.put(make_key(), make_entry(measured=measured))
            db.put(make_key(c_out=c_out), make_entry())
            return db

        ab, ba = TuningDatabase(), TuningDatabase()
        ab.merge(replica(100.0, 64))
        ab.merge(replica(50.0, 128))
        ba.merge(replica(50.0, 128))
        ba.merge(replica(100.0, 64))

        def strip(db):
            # Trial pooling differs by merge path; the winning configs
            # and latencies must not.
            return [
                (k, dataclasses.replace(e, trials=1)) for k, e in db.items()
            ]

        assert strip(ab) == strip(ba)
