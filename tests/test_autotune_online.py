"""Online tuner tests (`repro.autotune.online`)."""

import numpy as np
import pytest

from repro.autotune import OnlineTuner, TuningDatabase, candidate_configs
from repro.models import MinkUNet
from repro.sparse import SparseTensor
from repro.tune.groups import LayerRecord
from repro.sparse.kmap import build_kernel_map


def cloud(n=400, extent=18, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((len(coords), 4)).astype(np.float32)
    return SparseTensor(coords, feats)


def make_record(seed=0):
    sample = cloud(seed=seed)
    kmap = build_kernel_map(sample.coords, kernel_size=3, stride=1)
    return LayerRecord(
        signature=((1, 1, 1), (3, 3, 3), (1, 1, 1), False),
        kmap=kmap,
        c_in=16,
        c_out=32,
        label="conv",
    )


@pytest.fixture()
def model():
    return MinkUNet(in_channels=4, num_classes=5, width=0.25)


class TestSearchSpace:
    def test_space_covers_all_axes(self):
        configs = candidate_configs()
        from repro.kernels.registry import Dataflow

        dataflows = {c.dataflow for c in configs}
        assert Dataflow.IMPLICIT_GEMM in dataflows
        assert Dataflow.FETCH_ON_DEMAND in dataflows
        assert Dataflow.GATHER_SCATTER in dataflows
        assert {c.schedule.tile_m for c in configs} == {64, 128}
        assert {c.ig_config.num_splits for c in configs} >= {1, 2, 4}
        assert {c.gs_chunks for c in configs} == {1, 2}

    def test_space_order_is_stable(self):
        assert candidate_configs() == candidate_configs()


class TestTuneRecord:
    def test_search_verifies_top_k_and_banks_winner(self):
        db = TuningDatabase()
        tuner = OnlineTuner(db, verify_top_k=3)
        record = make_record()
        decision = tuner.tune_record(record, "3090", "fp16")
        assert decision.source == "search"
        assert decision.verified == 3
        assert tuner.measurements == 3
        assert len(db) == 1

    def test_db_hit_short_circuits(self):
        db = TuningDatabase()
        tuner = OnlineTuner(db)
        record = make_record()
        first = tuner.tune_record(record, "3090", "fp16")
        second = tuner.tune_record(record, "3090", "fp16")
        assert second.source == "db"
        assert second.config == first.config
        assert tuner.measurements == 3  # no new measurements on the hit

    def test_similar_scale_scene_shares_entry(self):
        """Scenes in the same sparsity bucket resolve to the same row."""
        db = TuningDatabase()
        tuner = OnlineTuner(db)
        tuner.tune_record(make_record(seed=0), "3090", "fp16")
        decision = tuner.tune_record(make_record(seed=1), "3090", "fp16")
        assert decision.source == "db"
        assert len(db) == 1

    def test_devices_get_separate_entries(self):
        db = TuningDatabase()
        tuner = OnlineTuner(db)
        record = make_record()
        tuner.tune_record(record, "3090", "fp16")
        decision = tuner.tune_record(record, "orin", "fp16")
        assert decision.source == "search"
        assert len(db) == 2

    def test_winner_at_least_as_good_as_any_verified(self):
        from repro.autotune import measure_config

        db = TuningDatabase()
        tuner = OnlineTuner(db, verify_top_k=5)
        record = make_record()
        decision = tuner.tune_record(record, "a100", "fp16")
        remeasured = measure_config(record, decision.config, "a100", "fp16")
        assert remeasured == pytest.approx(decision.measured_us)

    def test_verify_top_k_validated(self):
        with pytest.raises(ValueError):
            OnlineTuner(TuningDatabase(), verify_top_k=0)


class TestTuneModel:
    def test_policy_covers_all_groups(self, model):
        db = TuningDatabase()
        tuner = OnlineTuner(db)
        policy, report = tuner.tune_model(model, cloud(), "3090", "fp16")
        assert len(policy) == len(report.decisions)
        assert len(policy) > 0
        for signature in policy.signatures():
            assert policy.config(signature) is not None

    def test_second_model_run_is_all_hits(self, model):
        db = TuningDatabase()
        tuner = OnlineTuner(db)
        _, first = tuner.tune_model(model, cloud(), "3090", "fp16")
        _, second = tuner.tune_model(model, cloud(), "3090", "fp16")
        assert first.db_misses > 0
        assert second.db_misses == 0
        assert second.measurements == 0

    def test_two_seeded_runs_byte_identical_dbs(self, model, tmp_path):
        """The acceptance criterion: same seed, byte-identical databases."""
        paths = []
        for name in ("a", "b"):
            db = TuningDatabase()
            tuner = OnlineTuner(db)
            fresh = MinkUNet(in_channels=4, num_classes=5, width=0.25)
            tuner.tune_model(fresh, cloud(), "3090", "fp16")
            path = tmp_path / f"{name}.json"
            db.save(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_report_describe_mentions_hits(self, model):
        db = TuningDatabase()
        tuner = OnlineTuner(db)
        _, report = tuner.tune_model(model, cloud(), "3090", "fp16")
        text = report.describe()
        assert "db hits" in text
        assert "measurements" in text
