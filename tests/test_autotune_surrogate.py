"""Surrogate cost model quality tests (`repro.autotune.surrogate`).

The two satellite guarantees: predictions are *monotone* in workload size
(more flops/bytes never predicts faster — a consequence of non-negative
coefficients over monotone features), and the fit is *accurate* (median
relative error below 15% on a seeded grid of workloads x dataflows x
devices).
"""

import pytest

from repro.autotune import (
    FEATURE_NAMES,
    LayerShape,
    SurrogateModel,
    fit_surrogate,
    layer_features,
    training_grid,
)
from repro.errors import ConfigError
from repro.kernels.base import DEFAULT_SCHEDULE, SMALL_TILE
from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import Dataflow
from repro.nn.context import LayerConfig

BASE = LayerShape(
    num_inputs=20_000,
    num_outputs=20_000,
    volume=27,
    total_pairs=200_000,
    c_in=32,
    c_out=64,
)

CONFIGS = [
    LayerConfig(),  # sorted implicit gemm
    LayerConfig(ig_config=ImplicitGemmConfig.from_paper_notation(0)),
    LayerConfig(dataflow=Dataflow.FETCH_ON_DEMAND, schedule=SMALL_TILE),
    LayerConfig(dataflow=Dataflow.GATHER_SCATTER, gs_chunks=2),
]


@pytest.fixture(scope="module")
def fitted():
    model, report = fit_surrogate(
        devices=["3090", "a100"], seed=0, sizes=(300, 900)
    )
    return model, report


class TestMonotonicity:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_predict_monotone_in_workload_scale(self, fitted, config):
        """Scaling every extent up scales flops and bytes up; for a fixed
        schedule the prediction must not decrease."""
        model, _ = fitted
        preds = [
            model.predict(BASE.scaled(f), config, "a100", "fp16")
            for f in (0.25, 0.5, 1.0, 2.0, 4.0)
        ]
        assert all(b >= a for a, b in zip(preds, preds[1:]))

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_analytic_prior_monotone_too(self, config):
        model = SurrogateModel.analytic()
        preds = [
            model.predict(BASE.scaled(f), config, "a100", "fp16")
            for f in (0.5, 1.0, 2.0)
        ]
        assert all(b >= a for a, b in zip(preds, preds[1:]))

    def test_monotone_in_channels(self, fitted):
        model, _ = fitted
        import dataclasses

        preds = [
            model.predict(
                dataclasses.replace(BASE, c_in=c, c_out=2 * c),
                LayerConfig(),
                "a100",
                "fp16",
            )
            for c in (16, 32, 64, 128)
        ]
        assert all(b >= a for a, b in zip(preds, preds[1:]))

    def test_negative_coefficients_rejected(self):
        bad = {"implicit_gemm:sorted:t128x64x32": (-1.0,) * len(FEATURE_NAMES)}
        with pytest.raises(ConfigError):
            SurrogateModel(bad)


class TestFitQuality:
    def test_median_relative_error_bound(self, fitted):
        """The satellite bound: median rel err < 15% on the seeded grid of
        workloads x dataflows x devices the model was fitted on."""
        _, report = fitted
        assert report.median_rel_err < 0.15

    def test_residuals_match_report(self, fitted):
        model, report = fitted
        samples = training_grid(
            devices=["3090", "a100"], seed=0, sizes=(300, 900)
        )
        errs = sorted(model.residuals(samples))
        median = errs[len(errs) // 2]
        assert median == pytest.approx(report.median_rel_err, rel=0.05)

    def test_fit_beats_analytic_prior(self, fitted):
        model, report = fitted
        samples = training_grid(devices=["3090"], seed=0, sizes=(300,))
        prior = SurrogateModel.analytic()
        fitted_med = model.fit_report(samples).median_rel_err
        prior_med = prior.fit_report(samples).median_rel_err
        assert fitted_med < prior_med

    def test_fit_on_empty_raises(self):
        with pytest.raises(ConfigError):
            SurrogateModel.fit([])


class TestFeatures:
    def test_feature_vector_shape_and_sign(self):
        feats = layer_features(BASE, LayerConfig(), "a100", "fp16")
        assert len(feats) == len(FEATURE_NAMES)
        assert all(f >= 0.0 for f in feats)

    def test_map_feature_vanishes_without_charge(self):
        charged = layer_features(
            BASE, LayerConfig(), "a100", "fp16", charge_mapping=True
        )
        free = layer_features(
            BASE, LayerConfig(), "a100", "fp16", charge_mapping=False
        )
        map_idx = FEATURE_NAMES.index("map_us")
        assert free[map_idx] == 0.0
        assert charged[map_idx] > 0.0

    def test_splits_reduce_issued_work(self):
        """Sorted implicit GEMM with more splits pads less (Figure 11)."""
        gemm_idx = FEATURE_NAMES.index("gemm_us")
        gemms = [
            layer_features(
                BASE,
                LayerConfig(
                    ig_config=ImplicitGemmConfig.from_paper_notation(s)
                ),
                "a100",
                "fp16",
            )[gemm_idx]
            for s in (1, 2, 4)
        ]
        assert gemms[0] > gemms[1] > gemms[2]


class TestPersistence:
    def test_save_load_round_trip(self, fitted, tmp_path):
        model, _ = fitted
        path = tmp_path / "surrogate.json"
        model.save(path)
        loaded = SurrogateModel.load(path)
        assert loaded.coefficients == model.coefficients

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            SurrogateModel.load(tmp_path / "missing.json")

    def test_load_rejects_feature_set_mismatch(self, fitted, tmp_path):
        import json

        model, _ = fitted
        path = tmp_path / "surrogate.json"
        model.save(path)
        payload = json.loads(path.read_text())
        payload["features"] = ["other"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError):
            SurrogateModel.load(path)
