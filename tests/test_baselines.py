"""Tests for the baseline engines and the measurement harness."""

import numpy as np
import pytest

from repro.baselines import (
    get_engine,
    measure_inference,
    measure_training,
)
from repro.errors import ConfigError
from repro.models import get_workload
from repro.precision import Precision


@pytest.fixture(scope="module")
def tiny_workload():
    """SK-M-0.5 with a small shared input for fast engine comparisons."""
    import numpy as np

    from repro.models import MinkUNet
    from repro.sparse import SparseTensor

    rng = np.random.default_rng(0)
    coords = np.unique(
        np.concatenate(
            [np.zeros((2000, 1), np.int32),
             rng.integers(0, 30, (2000, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    x = SparseTensor(
        coords, rng.standard_normal((len(coords), 4)).astype(np.float32)
    )
    model = MinkUNet(in_channels=4, num_classes=19, width=0.25)
    return model, x


class TestEngineRegistry:
    def test_aliases(self):
        assert get_engine("ME").name == "MinkowskiEngine"
        assert get_engine("spconv 1.2").name == "SpConv1.2"
        assert get_engine("SpConv2.3.5").name == "SpConv2.3.5"
        assert get_engine("torchsparse++").name == "TorchSparse++"

    def test_unknown(self):
        with pytest.raises(ConfigError):
            get_engine("cusparse")

    def test_minkowski_forces_fp32(self):
        engine = get_engine("minkowskiengine")
        assert engine.supported_precision(Precision.FP16) is Precision.FP32

    def test_other_engines_keep_precision(self):
        for name in ("spconv1", "torchsparse", "spconv2", "torchsparse++"):
            engine = get_engine(name)
            assert engine.supported_precision(Precision.FP16) is Precision.FP16


class TestEngineOrdering:
    """The paper's Figure 14 ordering must hold on the small fixture."""

    @pytest.fixture(scope="class")
    def latencies(self, tiny_workload):
        model, x = tiny_workload
        workload = get_workload("SK-M-0.5")
        out = {}
        for name in ("minkowskiengine", "spconv1", "torchsparse",
                     "spconv2", "torchsparse++"):
            engine = get_engine(name)
            m = measure_inference(
                engine, workload, "a100", "fp16", model=model, inputs=[x]
            )
            out[engine.name] = m.mean_ms
        return out

    def test_torchsparsepp_fastest(self, latencies):
        best = min(latencies.values())
        assert latencies["TorchSparse++"] == best

    def test_spconv2_second(self, latencies):
        others = {k: v for k, v in latencies.items()
                  if k not in ("TorchSparse++", "SpConv2.3.5")}
        assert latencies["SpConv2.3.5"] < min(others.values())

    def test_gather_scatter_fusion_helps(self, latencies):
        assert latencies["TorchSparse"] < latencies["SpConv1.2"]

    def test_speedup_bands_roughly_match_paper(self, latencies):
        base = latencies["TorchSparse++"]
        # Paper (A100): ME 2.9-3.7x, SpConv1 3.2-3.3x, TS 2.0-2.2x,
        # SpConv2 1.4-1.7x.  The tiny fixture exaggerates per-offset
        # launch overheads, so the bands here are deliberately loose; the
        # full-scale bands are asserted by benchmarks/test_fig14.
        assert 1.5 < latencies["MinkowskiEngine"] / base < 20.0
        assert 1.5 < latencies["SpConv1.2"] / base < 20.0
        assert 1.2 < latencies["TorchSparse"] / base < 8.0
        assert 1.0 < latencies["SpConv2.3.5"] / base < 3.0


class TestHarness:
    def test_inference_measurement_fields(self, tiny_workload):
        model, x = tiny_workload
        m = measure_inference(
            get_engine("spconv2"), get_workload("SK-M-0.5"),
            "3090", "fp16", model=model, inputs=[x],
        )
        assert m.mean_ms > 0
        assert m.engine == "SpConv2.3.5"
        assert "gemm" in m.breakdown_us and "mapping" in m.breakdown_us

    def test_mapping_share_significant(self, tiny_workload):
        # Section 6.3: mapping operations are a large share of runtime.
        model, x = tiny_workload
        m = measure_inference(
            get_engine("spconv2"), get_workload("SK-M-0.5"),
            "a100", "fp16", model=model, inputs=[x],
        )
        total = sum(m.breakdown_us.values())
        assert m.breakdown_us["mapping"] / total > 0.15

    def test_training_measurement(self):
        workload = get_workload("SK-M-0.5")
        # Build a tiny custom model/input to keep the test fast.
        from repro.models import MinkUNet

        model = MinkUNet(in_channels=4, num_classes=5, width=0.25)
        m = measure_training(
            get_engine("spconv2"), workload, "a100", "fp16",
            seeds=(0,), batch_size=1, model=model,
        )
        assert m.mean_ms > 0

    def test_precision_changes_latency(self, tiny_workload):
        model, x = tiny_workload
        w = get_workload("SK-M-0.5")
        engine = get_engine("spconv2")
        t16 = measure_inference(engine, w, "3090", "fp16",
                                model=model, inputs=[x]).mean_ms
        t32 = measure_inference(engine, w, "3090", "fp32",
                                model=model, inputs=[x]).mean_ms
        assert t32 > t16
