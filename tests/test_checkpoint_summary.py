"""Tests for model checkpointing and the summary utility."""

import numpy as np
import pytest

from repro.models import MinkUNet
from repro.nn import ConvBlock, ExecutionContext, Sequential, SparseConv3d
from repro.nn.summary import summarize, summary_table
from repro.sparse import SparseTensor


def cloud(n=150, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, 12, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    return SparseTensor(
        coords, rng.standard_normal((len(coords), 4)).astype(np.float32)
    )


class TestStateDict:
    def test_roundtrip_restores_outputs(self):
        x = cloud()
        source = Sequential(ConvBlock(4, 8, label="a", seed=1),
                            ConvBlock(8, 8, label="b", seed=2))
        target = Sequential(ConvBlock(4, 8, label="a", seed=9),
                            ConvBlock(8, 8, label="b", seed=10))
        ref = source(x, ExecutionContext(precision="fp32"))
        target.load_state_dict(source.state_dict())
        out = target(cloud(), ExecutionContext(precision="fp32"))
        np.testing.assert_allclose(out.feats, ref.feats, rtol=1e-5)

    def test_includes_running_stats(self):
        model = ConvBlock(4, 8)
        state = model.state_dict()
        assert any("running_mean" in k for k in state)

    def test_missing_key_raises(self):
        model = SparseConv3d(4, 8, 3)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_shape_mismatch_raises(self):
        model = SparseConv3d(4, 8, 3)
        state = model.state_dict()
        state["weight"] = np.zeros((1, 1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = SparseConv3d(4, 8, 3)
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_minkunet_roundtrip(self):
        a = MinkUNet(in_channels=4, num_classes=3, width=0.25, seed=0)
        b = MinkUNet(in_channels=4, num_classes=3, width=0.25, seed=42)
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestSummary:
    def test_summarize_counts_convs(self):
        model = Sequential(ConvBlock(4, 8), ConvBlock(8, 16))
        layers = summarize(model, cloud())
        assert len(layers) == 2
        assert layers[0].c_in == 4 and layers[1].c_out == 16
        assert all(l.effective_macs > 0 for l in layers)

    def test_summary_preserves_training_mode(self):
        model = ConvBlock(4, 8)
        model.train()
        summarize(model, cloud())
        assert model.training

    def test_summary_table_renders(self):
        model = Sequential(ConvBlock(4, 8, label="stem"))
        text = summary_table(model, cloud())
        assert "stem" in text and "TOTAL" in text
