"""CLI tests for `python -m repro autotune` (exit codes 0/1/2)."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def fast_fit_args():
    # One small device grid keeps wall-clock low.
    return ["autotune", "fit", "--devices", "3090", "--sizes", "300"]


class TestFit:
    def test_fit_exits_zero_and_saves(self, fast_fit_args, tmp_path, capsys):
        out = tmp_path / "surrogate.json"
        rc = main(fast_fit_args + ["--output", str(out)])
        assert rc == 0
        assert out.exists()
        assert "median rel err" in capsys.readouterr().out

    def test_fit_json_document(self, fast_fit_args, capsys):
        rc = main(fast_fit_args + ["--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["failed"] is False
        assert doc["median_rel_err"] < 0.15

    def test_fit_fails_on_impossible_bound(self, fast_fit_args, capsys):
        rc = main(fast_fit_args + ["--max-median-err", "0.0001"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unknown_device_exits_2(self, capsys):
        rc = main(["autotune", "fit", "--devices", "nope", "--sizes", "300"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSearch:
    def test_search_creates_db(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        rc = main(
            ["autotune", "search", "SK-M-0.5", "--device", "3090",
             "--db", str(db), "--scale", "0.1"]
        )
        assert rc == 0
        assert db.exists()
        assert "entries" in capsys.readouterr().out

    def test_search_deterministic_dbs(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            rc = main(
                ["autotune", "search", "SK-M-0.5", "--device", "3090",
                 "--db", str(path), "--scale", "0.1", "--json"]
            )
            assert rc == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_second_search_all_hits(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        args = ["autotune", "search", "SK-M-0.5", "--device", "3090",
                "--db", str(db), "--scale", "0.1", "--json"]
        main(args)
        capsys.readouterr()
        rc = main(args)
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["db_misses"] == 0
        assert doc["measurements"] == 0

    def test_unknown_workload_exits_2(self, tmp_path, capsys):
        rc = main(
            ["autotune", "search", "nope", "--db", str(tmp_path / "db.json")]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestInspectMerge:
    @pytest.fixture()
    def seeded_db(self, tmp_path):
        db = tmp_path / "db.json"
        main(["autotune", "search", "SK-M-0.5", "--device", "3090",
              "--db", str(db), "--scale", "0.1"])
        return db

    def test_inspect_lists_entries(self, seeded_db, capsys):
        capsys.readouterr()
        rc = main(["autotune", "inspect", str(seeded_db)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuning database" in out
        assert "3090" in out

    def test_inspect_json_is_db_document(self, seeded_db, capsys):
        capsys.readouterr()
        rc = main(["autotune", "inspect", str(seeded_db), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert "schema" in doc and "entries" in doc

    def test_inspect_missing_db_exits_2(self, tmp_path, capsys):
        rc = main(["autotune", "inspect", str(tmp_path / "missing.json")])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_merge_two_replicas(self, seeded_db, tmp_path, capsys):
        other = tmp_path / "other.json"
        main(["autotune", "search", "SK-M-0.5", "--device", "a100",
              "--db", str(other), "--scale", "0.1"])
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        rc = main(
            ["autotune", "merge", str(seeded_db), str(other),
             "--output", str(merged), "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        merged_doc = json.loads(merged.read_text())
        assert doc["entries"] == len(merged_doc["entries"])
        # Different devices: merged holds both replicas' rows.
        a = json.loads(seeded_db.read_text())["entries"]
        b = json.loads(other.read_text())["entries"]
        assert doc["entries"] == len(a) + len(b)

    def test_merge_missing_input_exits_2(self, tmp_path, capsys):
        rc = main(
            ["autotune", "merge", str(tmp_path / "missing.json"),
             "--output", str(tmp_path / "out.json")]
        )
        assert rc == 2


class TestUsageErrors:
    def test_unknown_subcommand_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["autotune", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "fit" in err and "search" in err and "merge" in err

    def test_bare_autotune_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["autotune"])
        assert exc.value.code == 2
