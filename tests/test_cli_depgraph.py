"""CLI contract tests for ``repro depgraph`` and ``repro memory --json``.

Locks down the machine-readable schemas (CI scripts ``cmp`` the JSON) and
the exit-code contract: 0 = clean, 1 = violations/findings, 2 = usage
error.
"""

import json

import pytest

from repro.cli import main

WORKLOAD = "SK-M-0.5"
FAST = ["--scale", "0.1", "--batch", "1"]


def run(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestDepgraphCommand:
    def test_text_output_clean_exit_zero(self, capsys):
        rc, out, _ = run(capsys, ["depgraph", WORKLOAD, *FAST])
        assert rc == 0
        assert "launches" in out
        assert "critical path" in out
        assert "dependence/liveness invariants: clean" in out

    def test_json_schema(self, capsys):
        rc, out, _ = run(capsys, ["depgraph", WORKLOAD, *FAST, "--json"])
        assert rc == 0
        doc = json.loads(out)
        assert set(doc) >= {
            "device", "precision", "launches", "edges", "critical_path_us",
            "serialized_us", "parallelism", "critical_path", "violations",
        }
        assert doc["violations"] == []
        assert set(doc["edges"]) == {"RAW", "WAR", "WAW"}
        assert doc["launches"] > 0
        assert 0 < doc["critical_path_us"] <= doc["serialized_us"]
        assert doc["parallelism"] >= 1.0
        indices = [step["index"] for step in doc["critical_path"]]
        assert indices == sorted(indices)

    def test_json_is_deterministic(self, capsys):
        _, first, _ = run(capsys, ["depgraph", WORKLOAD, *FAST, "--json"])
        _, second, _ = run(capsys, ["depgraph", WORKLOAD, *FAST, "--json"])
        assert first == second

    def test_dot_output(self, capsys):
        rc, out, _ = run(capsys, ["depgraph", WORKLOAD, *FAST, "--dot"])
        assert rc == 0
        assert out.startswith("digraph depgraph {")
        assert out.rstrip().endswith("}")

    def test_unknown_workload_exits_two(self, capsys):
        rc, _, err = run(capsys, ["depgraph", "NOPE-0", *FAST])
        assert rc == 2
        assert "error:" in err

    def test_unknown_device_exits_two(self, capsys):
        rc, _, err = run(
            capsys, ["depgraph", WORKLOAD, *FAST, "--device", "tpu9"]
        )
        assert rc == 2
        assert "error:" in err


BROKEN_TRACES = {
    "tests.broken_traces:build_dropped_gather": "uninitialized-read",
    "tests.broken_traces:build_reordered_scatter": "uninitialized-read",
    "tests.broken_traces:build_leaked_staging": "workspace-lifetime",
}


class TestLintTraceRules:
    @pytest.mark.parametrize("spec,rule", sorted(BROKEN_TRACES.items()))
    def test_broken_trace_fixture_fails_lint(self, capsys, spec, rule):
        rc, out, _ = run(capsys, ["lint", spec, "--json"])
        assert rc == 1
        doc = json.loads(out)
        assert doc["failed"]
        assert any(f["rule"] == rule for f in doc["findings"]), doc

    def test_no_trace_flag_suppresses_trace_rules(self, capsys):
        spec = "tests.broken_traces:build_dropped_gather"
        rc, out, _ = run(capsys, ["lint", spec, "--json", "--no-trace"])
        assert rc == 0
        doc = json.loads(out)
        assert not doc["failed"]
        assert all(
            f["severity"] != "error" for f in doc["findings"]
        ), doc


class TestMemoryJson:
    def test_schema_and_parse(self, capsys):
        rc, out, _ = run(capsys, ["memory", WORKLOAD, *FAST, "--json"])
        assert rc == 0
        doc = json.loads(out)
        assert set(doc) >= {
            "workload", "precision", "batch", "scale", "mem_headroom",
            "budget_cap_mib", "cold_mib", "precision_veto", "devices",
        }
        assert doc["workload"] == WORKLOAD
        assert set(doc["cold_mib"]) == {
            "weights", "features", "workspace", "total",
        }
        # Bundled models are fp16-safe: the rung is never vetoed.
        assert doc["precision_veto"] is None
        assert doc["devices"]
        for dev in doc["devices"]:
            assert set(dev) >= {
                "device", "dram_gib", "budget_mib", "steady_mib",
                "verdict", "ladder",
            }

    def test_json_is_deterministic(self, capsys):
        _, first, _ = run(capsys, ["memory", WORKLOAD, *FAST, "--json"])
        _, second, _ = run(capsys, ["memory", WORKLOAD, *FAST, "--json"])
        assert first == second

    def test_unknown_workload_exits_two(self, capsys):
        rc, _, err = run(capsys, ["memory", "NOPE-0", *FAST, "--json"])
        assert rc == 2
        assert "error:" in err
