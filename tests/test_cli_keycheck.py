"""CLI regression tests for ``repro keycheck``."""

from __future__ import annotations

import json

import pytest

from repro.analyze import provenance
from repro.cli import main

BROKEN = "tests.broken_caches:register_unsound"


@pytest.fixture
def clean_registry():
    before = dict(provenance.REGISTRY)
    yield
    for site in set(provenance.REGISTRY) - set(before):
        provenance._AUDITS.pop(site, None)
    provenance.REGISTRY.clear()
    provenance.REGISTRY.update(before)


class TestExitCodes:
    def test_all_builtin_sites_sound_exit_zero(self, capsys):
        assert main(["keycheck"]) == 0
        out = capsys.readouterr().out
        assert "all keys sound" in out
        assert "gpusim.trace-memo" in out

    def test_single_site_selection(self, capsys):
        assert main(["keycheck", "--site", "gpusim.trace-memo"]) == 0
        out = capsys.readouterr().out
        assert "gpusim.trace-memo" in out
        assert "serve.policy-cache" not in out

    def test_unknown_site_exits_two(self, capsys):
        assert main(["keycheck", "--site", "no.such-site"]) == 2
        err = capsys.readouterr().err
        assert "unknown cache site" in err
        assert "gpusim.trace-memo" in err  # valid choices listed

    def test_bad_register_spec_exits_two(self, capsys):
        assert main(["keycheck", "--register", "nonsense"]) == 2
        assert "module:function" in capsys.readouterr().err

    def test_bad_register_module_exits_two(self, capsys):
        assert main(["keycheck", "--register", "no.such.module:f"]) == 2
        assert "cannot import" in capsys.readouterr().err

    def test_bad_register_attr_exits_two(self, capsys):
        rc = main(
            ["keycheck", "--register", "tests.broken_caches:no_such"]
        )
        assert rc == 2
        assert "no attribute" in capsys.readouterr().err

    def test_planted_unsound_site_exits_one(self, clean_registry, capsys):
        rc = main(
            [
                "keycheck",
                "--register", BROKEN,
                "--site", "test.broken-trace-memo",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "UNSOUND" in out
        assert "unkeyed-read" in out and "launch.flops" in out


class TestJsonOutput:
    def test_json_document_shape(self, capsys):
        assert main(["keycheck", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["failed"] is False
        assert doc["unsound"] == []
        assert set(doc["sites"]) == {
            "autotune.tuning-db",
            "gpusim.trace-memo",
            "serve.kmap-batch-memo",
            "serve.policy-cache",
            "serve.sample-memo",
        }
        for audit in doc["sites"].values():
            assert audit["sound"] is True
            assert audit["unkeyed"] == []
            assert audit["reads"]

    def test_json_is_deterministic(self, capsys):
        assert main(["keycheck", "--json", "--fuzz"]) == 0
        first = capsys.readouterr().out
        assert main(["keycheck", "--json", "--fuzz"]) == 0
        assert capsys.readouterr().out == first

    def test_fuzz_reports_trials(self, capsys):
        assert main(
            ["keycheck", "--json", "--fuzz", "--site", "gpusim.trace-memo"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        report = doc["fuzz"]["gpusim.trace-memo"]
        assert report["ok"] is True
        assert report["trials"] > 0

    def test_planted_unsound_site_in_json(self, clean_registry, capsys):
        rc = main(
            [
                "keycheck",
                "--json",
                "--register", BROKEN,
                "--site", "test.broken-trace-memo",
            ]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["failed"] is True
        assert doc["unsound"] == ["test.broken-trace-memo"]
        audit = doc["sites"]["test.broken-trace-memo"]
        assert audit["unkeyed"] == ["launch.flops"]
