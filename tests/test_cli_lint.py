"""CLI regression tests for ``repro lint`` and ``repro dataflows``."""

import json

from repro.cli import main

BROKEN = "tests.broken_models:build_broken"


class TestDataflowsCommand:
    def test_lists_all_dataflows(self, capsys):
        from repro.kernels import dataflow_choices

        assert main(["dataflows"]) == 0
        out = capsys.readouterr().out
        for name in dataflow_choices():
            assert name in out
        assert "output-stationary" in out
        assert "weight-stationary" in out


class TestLintExitCodes:
    def test_clean_workload_exits_zero(self, capsys):
        assert main(["lint", "SK-M-0.5"]) == 0
        out = capsys.readouterr().out
        assert "SK-M-0.5" in out and "finding(s)" in out

    def test_unknown_workload_exits_two_with_choices(self, capsys):
        assert main(["lint", "XX-nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "SK-M-0.5" in err  # valid choices are listed

    def test_unknown_device_exits_two(self, capsys):
        assert main(["lint", "SK-M-0.5", "--device", "tpu9"]) == 2
        assert "unknown device" in capsys.readouterr().err

    def test_unknown_precision_exits_two(self, capsys):
        assert main(["lint", "SK-M-0.5", "--precision", "fp4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "workload id or module:factory" in capsys.readouterr().err

    def test_bad_import_module_exits_two(self, capsys):
        assert main(["lint", "no.such.module:build"]) == 2
        assert "cannot import" in capsys.readouterr().err

    def test_bad_factory_attr_exits_two(self, capsys):
        assert main(["lint", "tests.broken_models:no_such_factory"]) == 2
        assert "no attribute" in capsys.readouterr().err

    def test_broken_model_fails_on_error(self, capsys):
        rc = main(
            ["lint", BROKEN, "--precision", "fp32", "--fail-on", "error"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "stride-mismatch" in out
        assert "tile-alignment" in out
        assert "dataflow-precision" in out
        assert "worst severity error" in out

    def test_fail_on_warning_tightens_the_gate(self):
        # Bundled MinkUNet carries INFO findings only: clean either way.
        assert main(["lint", "SK-M-0.5", "--fail-on", "warning"]) == 0
        # The broken net at FP16 has no errors when restricted to the
        # tile rule, but its interior-width warning trips fail-on=warning.
        args = ["lint", BROKEN, "--rules", "tile-alignment"]
        assert main(args + ["--fail-on", "error"]) == 0
        assert main(args + ["--fail-on", "warning"]) == 1

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "SK-M-0.5", "--rules", "no-such-rule"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err


class TestLintJson:
    def test_json_output_parses(self, capsys):
        rc = main(["lint", BROKEN, "--precision", "fp32", "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == BROKEN
        assert payload["failed"] is True
        rules = {f["rule"] for f in payload["findings"]}
        assert {"stride-mismatch", "tile-alignment",
                "dataflow-precision"} <= rules
        for finding in payload["findings"]:
            assert finding["severity"] in ("info", "warning", "error")

    def test_json_clean_workload(self, capsys):
        assert main(["lint", "SK-M-0.5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        assert all(
            f["severity"] == "info" for f in payload["findings"]
        )


class TestLintRuleListing:
    def test_list_rules_exits_zero_and_names_all_rules(self, capsys):
        from repro.analyze import RULES

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out

    def test_rules_subset_only_runs_selected(self, capsys):
        rc = main(
            ["lint", BROKEN, "--precision", "fp32",
             "--rules", "stride-mismatch"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "stride-mismatch" in out
        assert "tile-alignment" not in out
