"""Tests for the CLI and the trace-report utilities."""

import numpy as np
import pytest

from repro.cli import main
from repro.gpusim.report import by_layer, layer_report, timeline
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind


def make_trace():
    return KernelTrace(
        [
            KernelLaunch(name="conv1/fwd:main", kind=LaunchKind.GEMM,
                         flops=1e9, ctas=500),
            KernelLaunch(name="conv1/map/hash_query",
                         kind=LaunchKind.MAPPING, scalar_ops=1e7, ctas=100),
            KernelLaunch(name="conv2/fwd:main", kind=LaunchKind.GEMM,
                         flops=5e8, ctas=300),
        ]
    )


class TestReport:
    def test_timeline_contains_all_launches(self):
        text = timeline(make_trace(), "a100", "fp16")
        assert "conv1/fwd:main" in text
        assert "conv2/fwd:main" in text
        assert "total" in text

    def test_timeline_top_filters(self):
        text = timeline(make_trace(), "a100", "fp16", top=1)
        assert text.count("conv") == 1

    def test_by_layer_groups_by_prefix(self):
        grouped = by_layer(make_trace(), "a100", "fp16")
        assert set(grouped) == {"conv1", "conv2"}
        assert grouped["conv1"] > grouped["conv2"]

    def test_layer_report_shares_sum_to_100(self):
        text = layer_report(make_trace(), "a100", "fp16")
        shares = [
            float(line.split("|")[-1].strip().rstrip("%"))
            for line in text.splitlines()[3:]
        ]
        assert sum(shares) == pytest.approx(100.0, abs=0.5)


class TestCli:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "Jetson" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        assert "SK-M-0.5" in capsys.readouterr().out

    def test_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "TorchSparse++" in out and "MinkowskiEngine" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiments_list(self, capsys):
        from repro.experiments.__main__ import main as exp_main

        assert exp_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig14_inference" in out
        assert "tab05_split_space" in out

    def test_experiments_unknown(self):
        from repro.experiments.__main__ import main as exp_main

        with pytest.raises(SystemExit):
            exp_main(["fig99"])
