"""Tests for the CLI and the trace-report utilities."""

import numpy as np
import pytest

from repro.cli import main
from repro.gpusim.report import by_layer, layer_report, timeline
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind


def make_trace():
    return KernelTrace(
        [
            KernelLaunch(name="conv1/fwd:main", kind=LaunchKind.GEMM,
                         flops=1e9, ctas=500),
            KernelLaunch(name="conv1/map/hash_query",
                         kind=LaunchKind.MAPPING, scalar_ops=1e7, ctas=100),
            KernelLaunch(name="conv2/fwd:main", kind=LaunchKind.GEMM,
                         flops=5e8, ctas=300),
        ]
    )


class TestReport:
    def test_timeline_contains_all_launches(self):
        text = timeline(make_trace(), "a100", "fp16")
        assert "conv1/fwd:main" in text
        assert "conv2/fwd:main" in text
        assert "total" in text

    def test_timeline_top_filters(self):
        text = timeline(make_trace(), "a100", "fp16", top=1)
        assert text.count("conv") == 1

    def test_by_layer_groups_by_prefix(self):
        grouped = by_layer(make_trace(), "a100", "fp16")
        assert set(grouped) == {"conv1", "conv2"}
        assert grouped["conv1"] > grouped["conv2"]

    def test_layer_report_shares_sum_to_100(self):
        text = layer_report(make_trace(), "a100", "fp16")
        shares = [
            float(line.split("|")[-1].strip().rstrip("%"))
            for line in text.splitlines()[3:]
        ]
        assert sum(shares) == pytest.approx(100.0, abs=0.5)


class TestCli:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "Jetson" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        assert "SK-M-0.5" in capsys.readouterr().out

    def test_engines(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "TorchSparse++" in out and "MinkowskiEngine" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_device_exits_2_with_choices(self, capsys):
        assert main(["measure", "SK-M-0.5", "--device", "h100"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "h100" in err
        assert "known devices" in err  # lists the valid choices

    def test_unknown_engine_exits_2(self, capsys):
        assert main(["measure", "SK-M-0.5", "--engine", "cudnn"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err and "torchsparse++" in err

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["measure", "SK-Z-9"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "SK-M-0.5" in err

    def test_unknown_precision_exits_2(self, capsys):
        assert main(["tune", "SK-M-0.5", "--precision", "int8"]) == 2
        err = capsys.readouterr().err
        assert "unknown precision" in err and "fp16" in err

    def test_tune_unknown_workload_exits_2(self, capsys):
        assert main(["tune", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_serve_bench_unknown_device_exits_2(self, capsys):
        assert main(["serve-bench", "--device", "tpu"]) == 2
        assert "known devices" in capsys.readouterr().err

    def test_serve_bench_missing_policy_file_exits_2(self, capsys):
        assert main(["serve-bench", "--policy", "/nonexistent/p.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_workload_alias_resolves(self):
        from repro.models import get_workload

        assert get_workload("sk-m-1x").id == "SK-M-1.0"
        assert get_workload("SK-M-0.5x").id == "SK-M-0.5"

    def test_experiments_list(self, capsys):
        from repro.experiments.__main__ import main as exp_main

        assert exp_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig14_inference" in out
        assert "tab05_split_space" in out

    def test_experiments_unknown(self):
        from repro.experiments.__main__ import main as exp_main

        with pytest.raises(SystemExit):
            exp_main(["fig99"])
