"""Tests for the Sparse Kernel Generator: IR, passes, emission, tiling."""

import numpy as np
import pytest

from repro.codegen import (
    GeneratedKernel,
    SparseKernelGenerator,
    TILE_CANDIDATES,
    adaptive_schedule,
    enumerate_schedules,
    tune_tile_size,
    utilization_vs_cublas,
)
from repro.codegen import passes as P
from repro.codegen.ir import ForLoop, IntOp, Predicate
from repro.codegen.source import line_count
from repro.codegen.templates import implicit_gemm_template, wgrad_template
from repro.errors import CodegenError
from repro.hw import RTX_3090
from repro.kernels.base import (
    ADDRESS_OPS_FIXED_SHAPE,
    ADDRESS_OPS_HOISTED,
    ADDRESS_OPS_NAIVE_DYNAMIC,
    BOUNDARY_CHECK_OPS,
    KernelSchedule,
    LARGE_TILE,
    SMALL_TILE,
)
from repro.precision import Precision
from repro.sparse.kmap import build_kernel_map


NAIVE = KernelSchedule(hoist_invariants=False, pad_maps=False)
HOISTED_UNPADDED = KernelSchedule(hoist_invariants=True, pad_maps=False)
DEFAULT = KernelSchedule()
FIXED = KernelSchedule(fixed_shape=True)


class TestTemplates:
    def test_naive_innermost_cost_matches_constant(self):
        program = implicit_gemm_template(NAIVE, dynamic_shape=True)
        assert P.innermost_address_ops(program) == ADDRESS_OPS_NAIVE_DYNAMIC
        assert P.innermost_boundary_ops(program) == BOUNDARY_CHECK_OPS

    def test_innermost_is_ldA(self):
        program = implicit_gemm_template(DEFAULT)
        assert program.innermost().var == "ldA"

    def test_wgrad_has_two_indirect_operands(self):
        program = wgrad_template(DEFAULT)
        from repro.codegen.ir import Load

        indirect = [
            n for n in program.walk()
            if isinstance(n, Load) and n.indirect
        ]
        assert len(indirect) >= 3  # map + A + B


class TestPasses:
    def test_hoisting_leaves_only_inner_dependent_ops(self):
        program = implicit_gemm_template(NAIVE)
        hoisted = P.hoist_loop_invariants(program)
        assert P.innermost_address_ops(hoisted) == ADDRESS_OPS_HOISTED

    def test_hoisting_preserves_total_op_census(self):
        program = implicit_gemm_template(NAIVE)
        hoisted = P.hoist_loop_invariants(program)
        assert P.count_nodes(hoisted)["intops"] == P.count_nodes(program)["intops"]

    def test_hoisting_does_not_move_boundary_checks(self):
        program = implicit_gemm_template(NAIVE)
        hoisted = P.hoist_loop_invariants(program)
        assert P.innermost_boundary_ops(hoisted) == BOUNDARY_CHECK_OPS

    def test_boundary_elimination_keeps_guarded_loads(self):
        program = implicit_gemm_template(NAIVE)
        stripped = P.eliminate_boundary_checks(program)
        assert P.count_nodes(stripped)["predicates"] == 0
        assert P.count_nodes(stripped)["loads"] == P.count_nodes(program)["loads"]

    def test_constant_fold_reduces_div_mod(self):
        program = implicit_gemm_template(NAIVE)
        folded = P.constant_fold(program)
        assert P.innermost_address_ops(folded) < P.innermost_address_ops(program)

    def test_double_buffer_marks_k_loop(self):
        program = implicit_gemm_template(DEFAULT)
        buffered = P.double_buffer(program)
        assert buffered.find_loop("k_inner").pipelined

    def test_double_buffer_requires_k_loop(self):
        bogus = ForLoop(var="i", extent=4, body=[IntOp("x = 1")])
        with pytest.raises(CodegenError):
            P.double_buffer(bogus)

    def test_passes_are_pure(self):
        program = implicit_gemm_template(NAIVE)
        before = P.innermost_address_ops(program)
        P.hoist_loop_invariants(program)
        P.eliminate_boundary_checks(program)
        P.constant_fold(program)
        assert P.innermost_address_ops(program) == before


class TestGenerator:
    @pytest.fixture()
    def generator(self):
        return SparseKernelGenerator()

    def test_default_kernel_is_fully_optimized(self, generator):
        kernel = generator.generate("implicit_gemm", DEFAULT)
        assert kernel.address_ops_per_element == ADDRESS_OPS_HOISTED
        assert kernel.boundary_ops_per_element == 0.0

    def test_naive_kernel_costs(self, generator):
        kernel = generator.generate("implicit_gemm", NAIVE)
        assert kernel.address_ops_per_element == ADDRESS_OPS_NAIVE_DYNAMIC
        assert kernel.boundary_ops_per_element == BOUNDARY_CHECK_OPS

    def test_fixed_shape_kernel_costs(self, generator):
        kernel = generator.generate("implicit_gemm", FIXED)
        assert kernel.address_ops_per_element == ADDRESS_OPS_FIXED_SHAPE
        assert kernel.boundary_ops_per_element == 0.0

    def test_hoisted_dynamic_beats_fixed_shape(self, generator):
        # Figure 20: the hoisted dynamic kernel slightly outperforms the
        # original fixed-shape kernel.
        dyn = generator.generate("implicit_gemm", DEFAULT)
        fixed = generator.generate("implicit_gemm", FIXED)
        assert dyn.address_ops_per_element < fixed.address_ops_per_element

    def test_source_emission(self, generator):
        kernel = generator.generate("implicit_gemm", DEFAULT)
        assert "__global__" in kernel.source
        assert "mma.sync" in kernel.source
        assert "[red]" in kernel.source and "[blue]" in kernel.source
        assert kernel.source_lines == line_count(kernel.source)

    def test_fetch_on_demand_template_generates(self, generator):
        kernel = generator.generate("fetch_on_demand", DEFAULT)
        assert "atomicAdd" in kernel.source

    def test_unknown_template_raises(self, generator):
        with pytest.raises(CodegenError):
            generator.generate("winograd")

    def test_engineering_cost_far_below_spconv2(self, generator):
        report = generator.engineering_cost_report()
        ours = report["torchsparsepp_generator_lines"]
        theirs = report["spconv2_metaprogrammer_lines"]
        assert ours < 0.1 * theirs  # "less than one-tenth" (abstract)

    def test_schedules_name_mangling(self, generator):
        kernel = generator.generate("implicit_gemm", SMALL_TILE)
        assert "m64n32k16" in kernel.name


class TestTiling:
    def test_enumerate_covers_candidates(self):
        schedules = enumerate_schedules()
        assert len(schedules) == len(TILE_CANDIDATES)
        assert all(s.warp_rows <= s.tile_m for s in schedules)

    def test_adaptive_picks_large_for_heavy(self):
        heavy = adaptive_schedule(1e10)
        light = adaptive_schedule(1e6)
        assert heavy.tile_m * heavy.tile_n > light.tile_m * light.tile_n
        assert heavy == LARGE_TILE and light == SMALL_TILE

    def test_adaptive_preserves_base_flags(self):
        base = KernelSchedule(pad_maps=False)
        assert adaptive_schedule(1e10, base).pad_maps is False

    def test_tile_tuning_large_gemm_prefers_big_tiles(self):
        best = tune_tile_size(65536, 1728, 256, RTX_3090, Precision.FP16)
        assert best.tile_m * best.tile_n >= 64 * 64

    def test_tile_tuning_small_gemm_prefers_small_tiles(self):
        best = tune_tile_size(512, 64, 16, RTX_3090, Precision.FP16)
        assert best.tile_m <= 64


class TestUtilization:
    def test_tuned_sparse_kernel_near_cublas(self):
        # Figure 8: tile-size tuning alone reaches ~cuBLAS utilization.
        rng = np.random.default_rng(0)
        n_points = 2000
        coords = np.unique(
            np.concatenate(
                [
                    np.zeros((n_points, 1), dtype=np.int32),
                    rng.integers(0, 40, (n_points, 3)).astype(np.int32),
                ],
                axis=1,
            ),
            axis=0,
        )
        kmap = build_kernel_map(coords, kernel_size=3)
        c = 64
        feats = rng.standard_normal((len(coords), c)).astype(np.float32)
        weights = rng.standard_normal((27, c, c)).astype(np.float32)
        ratio = utilization_vs_cublas(
            feats, weights, kmap, RTX_3090, Precision.FP16
        )
        assert ratio > 0.5  # within 2x of dense utilization at minimum
