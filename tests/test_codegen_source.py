"""Tests for pseudo-CUDA source emission and generated-kernel structure."""

import pytest

from repro.codegen import SparseKernelGenerator
from repro.codegen.source import emit_source, line_count
from repro.codegen.templates import (
    fetch_on_demand_template,
    implicit_gemm_template,
    wgrad_template,
)
from repro.kernels.base import KernelSchedule


@pytest.fixture()
def generator():
    return SparseKernelGenerator()


class TestEmission:
    def test_loop_structure_rendered(self):
        source = emit_source(
            implicit_gemm_template(KernelSchedule()), "k"
        )
        assert source.count("for (") >= 4  # cta, k_outer, k_inner, ldA
        assert "#pragma unroll" in source

    def test_boundary_check_rendered_when_unpadded(self, generator):
        unpadded = generator.generate(
            "implicit_gemm", KernelSchedule(pad_maps=False)
        )
        padded = generator.generate(
            "implicit_gemm", KernelSchedule(pad_maps=True)
        )
        assert "boundary check" in unpadded.source
        assert "boundary check" not in padded.source

    def test_double_buffer_annotation(self, generator):
        buffered = generator.generate(
            "implicit_gemm", KernelSchedule(double_buffer=True)
        )
        plain = generator.generate(
            "implicit_gemm", KernelSchedule(double_buffer=False)
        )
        assert "double-buffered" in buffered.source
        assert "double-buffered" not in plain.source

    def test_color_annotations_present(self, generator):
        kernel = generator.generate("implicit_gemm")
        for tag in ("[gray]", "[red]", "[blue]"):
            assert tag in kernel.source, tag

    def test_line_count_ignores_blanks(self):
        assert line_count("a\n\n b\n   \nc") == 3

    def test_hoisted_source_moves_div_out_of_inner_loop(self, generator):
        hoisted = generator.generate(
            "implicit_gemm", KernelSchedule(hoist_invariants=True)
        )
        # The divide now appears before the innermost unrolled loop.
        source = hoisted.source
        div_at = source.index("k / C_in")
        unroll_at = source.index("#pragma unroll")
        assert div_at < unroll_at

    def test_wgrad_template_emits_two_smem_operands(self):
        source = emit_source(wgrad_template(KernelSchedule()), "wg")
        assert source.count("smem_") >= 2

    def test_fetch_on_demand_atomics(self):
        source = emit_source(
            fetch_on_demand_template(KernelSchedule()), "fod"
        )
        assert "atomicAdd" in source

    def test_sources_are_stable_across_calls(self, generator):
        a = generator.generate("implicit_gemm").source
        b = generator.generate("implicit_gemm").source
        assert a == b
