"""Tests for the per-context charge-once accounting semantics."""

import numpy as np
import pytest

from repro.kernels.implicit_gemm import ImplicitGemmConfig
from repro.kernels.registry import Dataflow
from repro.nn import (
    ExecutionContext,
    FixedPolicy,
    LayerConfig,
    SparseConv3d,
)
from repro.sparse import SparseTensor


def cloud(seed=0, n=200):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, 12, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    return SparseTensor(
        coords, rng.standard_normal((len(coords), 4)).astype(np.float32)
    )


class TestChargeOnce:
    def test_charge_once_returns_true_then_false(self):
        ctx = ExecutionContext()
        assert ctx.charge_once(("k",)) is True
        assert ctx.charge_once(("k",)) is False
        assert ctx.charge_once(("other",)) is True

    def test_map_build_charged_once_per_context(self):
        x = cloud()
        conv1 = SparseConv3d(4, 8, 3)
        conv2 = SparseConv3d(8, 8, 3)
        ctx = ExecutionContext(simulate_only=True)
        y = conv1(x, ctx)
        conv2(y, ctx)
        assert len(ctx.trace.filter_name("hash_build")) == 1

    def test_fresh_context_recharges_cached_maps(self):
        x = cloud()
        conv = SparseConv3d(4, 8, 3)
        ctx1 = ExecutionContext(simulate_only=True)
        conv(x, ctx1)
        # Maps are now cached Python-side; a new context must still pay.
        ctx2 = ExecutionContext(simulate_only=True)
        conv(x, ctx2)
        assert len(ctx2.trace.filter_name("hash_build")) == 1
        assert ctx2.latency_us() == pytest.approx(ctx1.latency_us(), rel=1e-9)

    def test_sorting_charged_once_per_group(self):
        x = cloud()
        policy = FixedPolicy(
            LayerConfig(ig_config=ImplicitGemmConfig(num_splits=1, sort=True))
        )
        conv1 = SparseConv3d(4, 8, 3)
        conv2 = SparseConv3d(8, 8, 3)
        ctx = ExecutionContext(simulate_only=True, policy=policy)
        conv2(conv1(x, ctx), ctx)
        assert len(ctx.trace.filter_name("mapping/argsort")) == 1

    def test_different_configs_charge_separately(self):
        x = cloud()
        # Two convs in the same group but tuned to different split counts
        # cannot share the reordered map.
        conv1 = SparseConv3d(4, 8, 3)
        conv2 = SparseConv3d(8, 8, 3)

        class TwoConfigPolicy:
            def config(self, signature, role=None):
                return LayerConfig(
                    ig_config=ImplicitGemmConfig(num_splits=1, sort=True)
                )

        ctx = ExecutionContext(simulate_only=True, policy=TwoConfigPolicy())
        y = conv1(x, ctx)
        before = len(ctx.trace.filter_name("mapping/argsort"))
        ctx.policy = FixedPolicy(
            LayerConfig(ig_config=ImplicitGemmConfig(num_splits=3, sort=True))
        )
        conv2(y, ctx)
        assert len(ctx.trace.filter_name("mapping/argsort")) == before + 1

    def test_structure_conversion_charged_for_foreign_order(self):
        x = cloud()
        fod = FixedPolicy(LayerConfig(dataflow=Dataflow.FETCH_ON_DEMAND))
        conv = SparseConv3d(4, 8, 3)
        ctx = ExecutionContext(simulate_only=True, policy=fod)
        conv(x, ctx)
        # Hash-built maps are output-stationary; fetch-on-demand needs the
        # weight-stationary order -> one conversion pass.
        assert len(ctx.trace.filter_name("restructure")) >= 1

    def test_native_order_needs_no_conversion(self):
        x = cloud()
        ig = FixedPolicy(LayerConfig(dataflow=Dataflow.IMPLICIT_GEMM))
        conv = SparseConv3d(4, 8, 3)
        ctx = ExecutionContext(simulate_only=True, policy=ig)
        conv(x, ctx)
        assert len(ctx.trace.filter_name("restructure")) == 0

    def test_backward_prep_shared_when_configs_match(self):
        x = cloud()
        conv = SparseConv3d(4, 8, 3)
        conv.train()
        ctx = ExecutionContext(simulate_only=True, training=True)
        y = conv(x, ctx)
        conv.backward(np.zeros(y.feats.shape, dtype=np.float16), ctx)
        # dgrad and wgrad under the same config: no extra bwd_map prep.
        assert len(ctx.trace.filter_name("bwd_map")) == 0
