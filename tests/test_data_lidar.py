"""Tests for the synthetic LiDAR scanner and dataset configurations."""

import numpy as np
import pytest

from repro.data import DATASETS, LidarConfig, Scene, lidar_scan, make_sample
from repro.data.datasets import make_batch
from repro.data.lidar import LIDAR_32_BEAM, LIDAR_64_BEAM, Box, _ray_box_t
from repro.errors import ConfigError


class TestRayBox:
    def test_direct_hit(self):
        box = Box(center=np.array([10.0, 0.0, 1.0]), size=np.array([2.0, 2.0, 2.0]))
        dirs = np.array([[1.0, 0.0, 0.0]])
        t = _ray_box_t(np.zeros(3), dirs, box)
        assert t[0] == pytest.approx(9.0)

    def test_miss_is_inf(self):
        box = Box(center=np.array([10.0, 10.0, 1.0]), size=np.array([1.0, 1.0, 1.0]))
        dirs = np.array([[1.0, 0.0, 0.0]])
        assert np.isinf(_ray_box_t(np.zeros(3), dirs, box))[0]

    def test_behind_ray_is_inf(self):
        box = Box(center=np.array([-10.0, 0.0, 0.0]), size=np.array([1.0, 1.0, 1.0]))
        dirs = np.array([[1.0, 0.0, 0.0]])
        assert np.isinf(_ray_box_t(np.zeros(3), dirs, box))[0]

    def test_axis_parallel_ray_inside_slab(self):
        box = Box(center=np.array([5.0, 0.0, 0.0]), size=np.array([2.0, 2.0, 2.0]))
        dirs = np.array([[1.0, 0.0, 0.0]])  # zero y/z components
        t = _ray_box_t(np.zeros(3), dirs, box)
        assert t[0] == pytest.approx(4.0)


class TestLidarScan:
    def test_returns_points_with_intensity(self):
        points = lidar_scan(LidarConfig(beams=16, azimuth_steps=128), seed=0)
        assert points.shape[1] == 4
        assert len(points) > 100

    def test_respects_max_range(self):
        config = LidarConfig(beams=16, azimuth_steps=128, max_range=30.0)
        points = lidar_scan(config, seed=0)
        ranges = np.linalg.norm(points[:, :2], axis=1)
        assert ranges.max() < 31.0

    def test_deterministic_per_seed(self):
        scene = Scene.generate(seed=3)
        a = lidar_scan(LidarConfig(beams=8, azimuth_steps=64), scene, seed=1)
        b = lidar_scan(LidarConfig(beams=8, azimuth_steps=64), scene, seed=1)
        assert np.array_equal(a, b)

    def test_ego_offset_shifts_origin(self):
        scene = Scene.generate(seed=3)
        a = lidar_scan(LidarConfig(beams=8, azimuth_steps=64), scene, seed=1)
        b = lidar_scan(
            LidarConfig(beams=8, azimuth_steps=64), scene, seed=1,
            ego_offset=(5.0, 0.0),
        )
        assert not np.array_equal(a, b)

    def test_64_beam_denser_than_32(self):
        scene = Scene.generate(seed=0)
        dense = lidar_scan(LIDAR_64_BEAM, scene, seed=1)
        sparse = lidar_scan(LIDAR_32_BEAM, scene, seed=1)
        assert len(dense) > 2 * len(sparse)

    def test_ground_points_near_zero_height(self):
        # Empty scene: every downward ray returns a ground point at z ~ 0.
        empty = Scene(boxes=[])
        points = lidar_scan(
            LidarConfig(beams=32, azimuth_steps=256), empty, seed=4
        )
        assert len(points) > 0
        assert np.abs(points[:, 2]).max() < 0.5

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LidarConfig(beams=0)
        with pytest.raises(ValueError):
            LidarConfig(max_range=1.0, min_range=2.0)


class TestDatasets:
    def test_all_datasets_produce_samples(self):
        for name, config in DATASETS.items():
            sample = make_sample(name, seed=0)
            assert sample.num_points > 1000, name
            assert sample.num_channels == config.in_channels

    def test_multiframe_densifies(self):
        one = make_sample("nuscenes", frames=1, seed=0)
        three = make_sample("nuscenes", frames=3, seed=0)
        assert three.num_points > 1.5 * one.num_points

    def test_waymo_has_five_channels(self):
        assert make_sample("waymo", seed=0).num_channels == 5

    def test_batch_indices(self):
        batch = make_batch("nuscenes", batch_size=2, seed=0)
        assert batch.batch_size == 2
        assert set(np.unique(batch.coords[:, 0])) == {0, 1}

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            make_sample("kitti360")

    def test_invalid_frames(self):
        with pytest.raises(ConfigError):
            make_sample("waymo", frames=0)

    def test_voxel_neighbour_statistics_realistic(self):
        # Paper: points typically have 4-10 neighbours under Delta^3(3).
        from repro.sparse.kmap import build_kernel_map

        sample = make_sample("semantickitti", seed=0)
        kmap = build_kernel_map(sample.coords[:20000], kernel_size=3)
        assert 3.0 < kmap.mean_neighbors < 12.0
