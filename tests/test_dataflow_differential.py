"""Differential testing of every registered dataflow against the dense
reference.

One parametrized grid covers the whole compatibility matrix — every name
in :data:`repro.kernels.registry.DATAFLOWS` crossed with geometry
(kernel size, stride, tensor stride) and storage precision — and checks
each cell against a brute-force dense evaluation of the convolution.
This subsumes the old ad-hoc pairwise "matches gather_scatter" check:
agreement with the single reference implies pairwise agreement of all
dataflows, and a bug in ``gather_scatter`` itself can no longer hide as
the baseline.
"""

import numpy as np
import pytest

from repro.kernels import run_dataflow
from repro.kernels.registry import DATAFLOWS, Dataflow
from repro.precision import Precision
from repro.sparse.kmap import build_kernel_map


def random_coords(n, ndim=3, extent=12, seed=0):
    rng = np.random.default_rng(seed)
    spatial = rng.integers(0, extent, size=(4 * n, ndim))
    batch = np.zeros((4 * n, 1), dtype=np.int64)
    coords = np.concatenate([batch, spatial], axis=1).astype(np.int32)
    unique = np.unique(coords, axis=0)
    rng.shuffle(unique)
    return unique[:n]


def dense_reference(coords, feats, weights, kmap):
    """Brute-force evaluation of the sparse convolution (Equation 1),
    by direct coordinate arithmetic against the offset table — shares no
    code with the kernel maps' pair lists."""
    out = np.zeros((kmap.num_outputs, weights.shape[2]), dtype=np.float64)
    lookup = {tuple(c): i for i, c in enumerate(coords.tolist())}
    tstride = np.asarray(kmap.key.tensor_stride, dtype=np.int64)
    for n, q in enumerate(kmap.out_coords):
        for k, delta in enumerate(kmap.offsets):
            p = (q[0], *(q[1:] + delta * tstride))
            j = lookup.get(tuple(int(v) for v in p))
            if j is not None:
                out[n] += feats[j].astype(np.float64) @ weights[k].astype(
                    np.float64
                )
    return out


#: (name, kernel_size, stride, tensor_stride) — submanifold, downsampling,
#: strided-with-odd-kernel, and a dilated map on an already-strided tensor.
GEOMETRIES = [
    ("submanifold-k3", 3, 1, 1),
    ("downsample-k2s2", 2, 2, 1),
    ("downsample-k3s2", 3, 2, 1),
    ("dilated-k3-ts2", 3, 1, 2),
]

#: Comparison tolerances per storage precision.  FP16 storage quantizes
#: inputs and outputs; TF32 truncates GEMM operands to 10 mantissa bits.
TOLERANCES = {
    Precision.FP32: dict(rtol=1e-4, atol=1e-5),
    Precision.TF32: dict(rtol=5e-3, atol=5e-3),
    Precision.FP16: dict(rtol=3e-2, atol=3e-2),
}


def build_case(kernel_size, stride, tensor_stride, seed, c_in=5, c_out=6):
    coords = random_coords(48, seed=seed)
    if tensor_stride != 1:
        coords[:, 1:] *= tensor_stride
    rng = np.random.default_rng(seed + 1)
    feats = rng.standard_normal((len(coords), c_in)).astype(np.float32)
    kmap = build_kernel_map(
        coords, kernel_size, stride=stride, tensor_stride=tensor_stride
    )
    weights = rng.standard_normal(
        (kmap.volume, c_in, c_out)
    ).astype(np.float32) * 0.1
    return coords, feats, weights, kmap


class TestDataflowGrid:
    """The full dataflow x geometry x precision differential grid."""

    @pytest.mark.parametrize("precision", list(TOLERANCES))
    @pytest.mark.parametrize(
        "name,kernel_size,stride,tensor_stride",
        GEOMETRIES,
        ids=[g[0] for g in GEOMETRIES],
    )
    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_matches_dense_reference(
        self, dataflow, name, kernel_size, stride, tensor_stride, precision
    ):
        coords, feats, weights, kmap = build_case(
            kernel_size, stride, tensor_stride,
            seed=sum(map(ord, name + dataflow)) % 1000,
        )
        expected = dense_reference(coords, feats, weights, kmap)
        out, trace = run_dataflow(
            dataflow, feats, weights, kmap, precision=precision
        )
        assert len(trace) > 0
        np.testing.assert_allclose(
            out.astype(np.float64), expected, **TOLERANCES[precision]
        )

    def test_grid_covers_every_registered_dataflow(self):
        # The grid parametrizes over the registry itself, so a newly
        # registered dataflow is automatically differential-tested; this
        # guards against the registry and the enum drifting apart.
        assert set(DATAFLOWS) == {d.value for d in Dataflow}
        assert len(DATAFLOWS) == len(set(DATAFLOWS))

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_precisions_agree_on_one_geometry(self, dataflow):
        # Cheap cross-precision differential: fp16/tf32 outputs of one
        # dataflow must track its own fp32 output within storage error.
        coords, feats, weights, kmap = build_case(3, 1, 1, seed=77)
        base, _ = run_dataflow(
            dataflow, feats, weights, kmap, precision=Precision.FP32
        )
        for precision in (Precision.TF32, Precision.FP16):
            out, _ = run_dataflow(
                dataflow, feats, weights, kmap, precision=precision
            )
            np.testing.assert_allclose(
                out.astype(np.float64),
                base.astype(np.float64),
                **TOLERANCES[precision],
            )
