"""Tests for the launch-level dependence & liveness analyzer.

Covers the dependence DAG construction (edge kinds, forward orientation,
RMW semantics), the four cross-launch invariants on seeded broken traces,
cleanliness of every healthy dataflow x precision x geometry combination,
the critical-path / parallelism computation and its latency-model
cross-validation, buffer scoping across layers and samples, and the
determinism of the JSON export.
"""

import json

import numpy as np
import pytest

from repro.analyze.depgraph import (
    DependenceGraph,
    check_dependences,
    check_depgraph,
    check_latency_model,
    depgraph_report_json,
)
from repro.gpusim.engine import estimate_launch_us
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind, ext, ws
from repro.hw import get_device
from repro.kernels.registry import DATAFLOWS, Dataflow, trace_dataflow
from repro.kernels.wgrad import wgrad_trace
from repro.nn.blocks import ConvBlock
from repro.nn.context import ExecutionContext
from repro.nn.module import Module
from repro.precision import Precision
from repro.sparse.tensor import SparseTensor
from tests.broken_traces import (
    dropped_gather_trace,
    healthy_trace,
    leaked_staging_trace,
    reordered_scatter_trace,
)
from tests.test_dataflow_differential import GEOMETRIES, build_case

DEVICE = get_device("a100")


def _launch(name, reads=(), writes=(), workspace=0.0):
    return KernelLaunch(
        name=name,
        kind=LaunchKind.MEMORY,
        dram_read_bytes=64.0,
        dram_write_bytes=64.0,
        workspace_bytes=workspace,
        ctas=1,
        reads=tuple(reads),
        writes=tuple(writes),
    )


# ---------------------------------------------------------------------- #
# DAG construction
# ---------------------------------------------------------------------- #
class TestGraphBuild:
    def test_edge_kinds_on_produce_consume_overwrite(self):
        trace = [
            _launch("w1", writes=[ext("b", 64.0)]),
            _launch("r1", reads=[ext("b", 64.0)]),
            _launch("w2", writes=[ext("b", 64.0)]),
        ]
        graph = DependenceGraph.build(trace)
        kinds = {(e.src, e.dst, e.kind) for e in graph.edges}
        assert (0, 1, "RAW") in kinds
        assert (1, 2, "WAR") in kinds
        assert (0, 2, "WAW") in kinds

    def test_edges_point_forward_in_program_order(self):
        graph = DependenceGraph.build(healthy_trace())
        assert graph.edges
        for edge in graph.edges:
            assert edge.src < edge.dst

    def test_rmw_launch_stays_reader_of_record(self):
        # w1 -> rmw (read+write) -> w2: w2 must be WAR-ordered after the
        # RMW launch even though the RMW's own write superseded its read.
        trace = [
            _launch("w1", writes=[ext("b", 64.0)]),
            _launch("rmw", reads=[ext("b", 64.0)], writes=[ext("b", 64.0)]),
            _launch("w2", writes=[ext("b", 64.0)]),
        ]
        graph = DependenceGraph.build(trace)
        assert (1, 2, "WAR") in {(e.src, e.dst, e.kind) for e in graph.edges}
        # ...and the RMW chain is race-free.
        assert check_dependences(trace) == []

    def test_edge_counts_sum_to_total(self):
        graph = DependenceGraph.build(healthy_trace())
        assert sum(graph.edge_counts().values()) == len(graph.edges)


# ---------------------------------------------------------------------- #
# Healthy traces are clean
# ---------------------------------------------------------------------- #
class TestHealthyTracesClean:
    @pytest.mark.parametrize("dataflow", list(DATAFLOWS))
    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.FP16])
    @pytest.mark.parametrize(
        "name,kernel_size,stride,tensor_stride",
        GEOMETRIES,
        ids=[g[0] for g in GEOMETRIES],
    )
    def test_dataflow_grid(
        self, dataflow, precision, name, kernel_size, stride, tensor_stride
    ):
        coords, feats, weights, kmap = build_case(
            kernel_size, stride, tensor_stride, seed=7
        )
        trace = trace_dataflow(
            dataflow, kmap, feats.shape[1], weights.shape[2],
            precision=precision,
        )
        assert check_depgraph(trace, DEVICE, precision) == []

    def test_wgrad_traces_clean(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=3)
        for gathered in (False, True):
            trace = wgrad_trace(kmap, 5, 6, gathered=gathered)
            assert check_depgraph(trace, DEVICE, Precision.FP32) == []

    def test_gather_scatter_trace_clean(self):
        assert check_depgraph(healthy_trace(), DEVICE, Precision.FP32) == []

    def test_unannotated_launches_do_not_participate(self):
        trace = [_launch("legacy"), _launch("also-legacy")]
        assert check_dependences(trace) == []
        assert DependenceGraph.build(trace).edges == []


# ---------------------------------------------------------------------- #
# Broken traces are flagged with the expected invariant
# ---------------------------------------------------------------------- #
class TestBrokenTraces:
    def test_dropped_gather_is_use_before_def(self):
        violations = check_dependences(dropped_gather_trace())
        assert violations
        assert {v.invariant for v in violations} == {"uninitialized-read"}
        assert "gs_in.k0" in violations[0].message

    def test_reordered_scatter_is_raw_violation(self):
        violations = check_dependences(reordered_scatter_trace())
        assert violations
        assert {v.invariant for v in violations} == {"raw-order"}
        assert "before its first write" in violations[0].message

    def test_leaked_staging_is_lifetime_violation(self):
        violations = check_dependences(leaked_staging_trace())
        assert violations
        assert {v.invariant for v in violations} == {"workspace-lifetime"}
        assert "never read" in violations[0].message

    def test_under_accounted_workspace_is_use_after_free(self):
        trace = [
            _launch("produce", writes=[ws("buf", 4096.0)], workspace=4096.0),
            # Reads 4 KiB of live workspace but accounts none of it.
            _launch("consume", reads=[ws("buf", 4096.0)], workspace=0.0),
        ]
        violations = check_dependences(trace)
        assert [v.invariant for v in violations] == ["workspace-lifetime"]
        assert "already be freed" in violations[0].message

    def test_unordered_plain_writes_race(self):
        trace = [
            _launch("a", writes=[ext("out", 64.0)]),
            _launch("b", writes=[ext("out", 64.0)]),
        ]
        violations = check_dependences(trace)
        assert [v.invariant for v in violations] == [
            "unordered-conflicting-writes"
        ]

    def test_atomic_writers_do_not_race(self):
        trace = [
            _launch("a", writes=[ext("out", 64.0, atomic=True)]),
            _launch("b", writes=[ext("out", 64.0, atomic=True)]),
        ]
        assert check_dependences(trace) == []

    def test_raw_chain_orders_plain_writers(self):
        # write -> read -> write: reuse of one buffer across samples.
        trace = [
            _launch("w1", writes=[ext("out", 64.0)]),
            _launch("r", reads=[ext("out", 64.0)]),
            _launch("w2", writes=[ext("out", 64.0)]),
        ]
        assert check_dependences(trace) == []


# ---------------------------------------------------------------------- #
# Critical path and the latency-model cross-validation
# ---------------------------------------------------------------------- #
class TestCriticalPath:
    @pytest.mark.parametrize("dataflow", list(DATAFLOWS))
    def test_span_bounded_by_serialized_sum(self, dataflow):
        _, feats, weights, kmap = build_case(3, 1, 1, seed=5)
        trace = trace_dataflow(
            dataflow, kmap, feats.shape[1], weights.shape[2]
        )
        graph = DependenceGraph.build(trace)
        path, span = graph.critical_path(DEVICE, Precision.FP16)
        serialized = sum(
            estimate_launch_us(l, DEVICE, Precision.FP16) for l in trace
        )
        assert 0.0 < span <= serialized + 1e-9
        assert graph.parallelism(DEVICE, Precision.FP16) >= 1.0 - 1e-9
        assert check_latency_model(trace, DEVICE, Precision.FP16) == []

    def test_path_is_a_dependence_chain(self):
        graph = DependenceGraph.build(healthy_trace())
        path, _ = graph.critical_path(DEVICE, Precision.FP32)
        edges = {(e.src, e.dst) for e in graph.edges}
        for a, b in zip(path, path[1:]):
            assert (a, b) in edges

    def test_violated_bound_is_reported(self, monkeypatch):
        # Shrink the serialized estimate below the span: the lint fires.
        from repro.analyze import depgraph as dg

        monkeypatch.setattr(
            dg, "estimate_trace_us", lambda *a, **k: 0.0
        )
        violations = check_latency_model(
            healthy_trace(), DEVICE, Precision.FP32
        )
        assert [v.invariant for v in violations] == ["critical-path-bound"]

    def test_empty_trace(self):
        graph = DependenceGraph.build([])
        assert graph.critical_path(DEVICE, Precision.FP16) == ([], 0.0)
        assert graph.parallelism(DEVICE, Precision.FP16) == 1.0


# ---------------------------------------------------------------------- #
# Layer scoping and cross-sample reuse in full model executions
# ---------------------------------------------------------------------- #
class _TwoConvNet(Module):
    def __init__(self):
        super().__init__()
        self.b1 = ConvBlock(4, 8, 3, label="b1", seed=0)
        self.b2 = ConvBlock(8, 8, 3, label="b2", seed=1)

    def forward(self, x, ctx):
        return self.b2(self.b1(x, ctx), ctx)


def _sample(seed, n=120, channels=4):
    rng = np.random.default_rng(seed)
    spatial = rng.integers(0, 12, size=(n, 3))
    batch = np.zeros((n, 1), dtype=np.int64)
    coords = np.unique(
        np.concatenate([batch, spatial], axis=1).astype(np.int32), axis=0
    )
    feats = rng.standard_normal((len(coords), channels)).astype(np.float32)
    return SparseTensor(coords=coords, feats=feats)


class TestModelTraceScoping:
    def test_layers_get_disjoint_buffers_and_feature_chain(self):
        ctx = ExecutionContext(
            device=DEVICE, precision=Precision.FP16, simulate_only=True
        )
        _TwoConvNet()(_sample(0), ctx)
        assert check_depgraph(ctx.trace, DEVICE, Precision.FP16) == []
        buffers = {
            a.buffer
            for l in ctx.trace
            for a in list(l.reads) + list(l.writes)
        }
        # Workspace buffers are scoped per layer: no bare ws: names leak.
        ws_buffers = [b for b in buffers if b.startswith("ws:")]
        assert ws_buffers
        assert all(
            b.startswith(("ws:b1.", "ws:b2.")) for b in ws_buffers
        )
        # Feature chaining: b2's input reads resolve to b1's output buffer.
        graph = DependenceGraph.build(ctx.trace)
        chained = [
            e for e in graph.edges
            if e.kind == "RAW" and "fwd:feats_out" in e.buffer
        ]
        assert chained, "no cross-layer feature RAW edge"

    def test_multi_sample_context_stays_clean(self):
        ctx = ExecutionContext(
            device=DEVICE, precision=Precision.FP16, simulate_only=True
        )
        net = _TwoConvNet()
        for seed in range(3):
            net(_sample(seed), ctx)
        assert check_depgraph(ctx.trace, DEVICE, Precision.FP16) == []


# ---------------------------------------------------------------------- #
# Exports
# ---------------------------------------------------------------------- #
class TestExports:
    def test_json_report_is_deterministic_and_well_formed(self):
        trace = healthy_trace()
        a = depgraph_report_json(trace, DEVICE, Precision.FP32)
        b = depgraph_report_json(trace, DEVICE, Precision.FP32)
        assert a == b
        doc = json.loads(a)
        assert doc["violations"] == []
        assert doc["launches"] == len(list(trace))
        assert set(doc["edges"]) == {"RAW", "WAR", "WAW"}
        assert doc["critical_path_us"] <= doc["serialized_us"]
        assert doc["parallelism"] >= 1.0
        assert [step["index"] for step in doc["critical_path"]] == sorted(
            step["index"] for step in doc["critical_path"]
        )

    def test_json_report_carries_violations(self):
        doc = json.loads(
            depgraph_report_json(
                dropped_gather_trace(), DEVICE, Precision.FP32
            )
        )
        assert [v["invariant"] for v in doc["violations"]] == [
            "uninitialized-read"
        ]

    def test_dot_export_names_every_launch(self):
        trace = healthy_trace()
        dot = DependenceGraph.build(trace).to_dot()
        assert dot.startswith("digraph depgraph {")
        for launch in trace:
            assert launch.name in dot
        for style in ("solid", "dotted"):
            assert style in dot
