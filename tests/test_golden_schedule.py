"""Golden-schedule regression: ``repro depgraph --schedule --json`` must be
byte-for-byte reproducible and must match the committed fixture.

The fixture pins the whole scheduled-latency contract for one workload —
stream assignments, start/end times, makespan, speedup — so any drift in
the dependence builder, the launch cost model or the list scheduler shows
up as a diff instead of a silent behavior change.  Regenerate (after an
intentional model change) with:

    PYTHONPATH=src python -m repro.cli depgraph SK-M-0.5 --scale 0.1 \
        --batch 1 --schedule --json > tests/golden/depgraph_schedule.json
"""

import json
from pathlib import Path

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden" / "depgraph_schedule.json"
ARGV = [
    "depgraph", "SK-M-0.5", "--scale", "0.1", "--batch", "1",
    "--schedule", "--json",
]


def run(capsys):
    rc = main(ARGV)
    out = capsys.readouterr().out
    return rc, out


class TestGoldenSchedule:
    def test_two_runs_identical(self, capsys):
        rc1, first = run(capsys)
        rc2, second = run(capsys)
        assert rc1 == rc2 == 0
        assert first == second

    def test_matches_committed_golden(self, capsys):
        rc, out = run(capsys)
        assert rc == 0
        assert out == GOLDEN.read_text(), (
            "scheduled-latency output drifted from the golden fixture; "
            "if intentional, regenerate per this module's docstring"
        )

    def test_golden_schedule_invariants(self):
        doc = json.loads(GOLDEN.read_text())
        schedule = doc["schedule"]
        assert schedule["streams"] >= 2
        assert (
            doc["critical_path_us"]
            <= schedule["scheduled_us"]
            <= schedule["serialized_us"]
        )
        assert schedule["scheduled_us"] < schedule["serialized_us"]
        assert schedule["speedup"] > 1.0
        assert len(schedule["assignments"]) == doc["launches"]

    def test_golden_schedule_sync_events(self):
        # Overlap must name its synchronization: events are present,
        # consistent with the counter, charged at a nonzero per-event
        # cost, and the inference pass actually removed redundant ones.
        doc = json.loads(GOLDEN.read_text())
        schedule = doc["schedule"]
        assert len(schedule["events"]) == schedule["sync_events"] > 0
        assert schedule["sync_event_us"] > 0.0
        assert schedule["sync_us"] > 0.0
        assert schedule["events_removed"] > 0
        streams = {a["index"]: a["stream"] for a in schedule["assignments"]}
        for event in schedule["events"]:
            assert streams[event["record"]] == event["record_stream"]
            assert streams[event["wait"]] == event["wait_stream"]
            assert event["record_stream"] != event["wait_stream"]
