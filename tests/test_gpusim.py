"""Tests for the GPU performance model (traces and the latency engine)."""

import numpy as np
import pytest

from repro.gpusim import (
    KernelLaunch,
    KernelTrace,
    LaunchKind,
    estimate_launch_us,
    estimate_trace_us,
    latency_breakdown,
    wave_efficiency,
)
from repro.hw import A100, GTX_1080TI, JETSON_ORIN, RTX_2080TI, RTX_3090, get_device
from repro.errors import DeviceError
from repro.precision import Precision


class TestWaveEfficiency:
    def test_full_wave_is_perfect(self):
        assert wave_efficiency(216, 216) == 1.0

    def test_half_wave_is_half(self):
        assert wave_efficiency(108, 216) == pytest.approx(0.5)

    def test_partial_last_wave(self):
        # 3 full waves + 1 CTA -> 4 waves for 3*216+1 blocks.
        eff = wave_efficiency(3 * 216 + 1, 216)
        assert eff == pytest.approx((3 * 216 + 1) / (4 * 216))

    def test_many_ctas_approach_one(self):
        assert wave_efficiency(216 * 100, 216) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            wave_efficiency(0, 216)


class TestEstimateLaunch:
    def big_gemm(self, **kw):
        defaults = dict(
            name="g",
            kind=LaunchKind.GEMM,
            flops=1e12,
            dram_read_bytes=1e9,
            dram_write_bytes=1e8,
            ctas=100000,
            overlapped=True,
        )
        defaults.update(kw)
        return KernelLaunch(**defaults)

    def test_fp16_uses_tensor_cores(self):
        t16 = estimate_launch_us(self.big_gemm(), A100, Precision.FP16)
        t32 = estimate_launch_us(self.big_gemm(), A100, Precision.FP32)
        assert t32 > 4 * t16  # 312 vs 19.5 TFLOPS (memory bound floor)

    def test_tensor_core_ineligible_falls_back(self):
        fast = estimate_launch_us(self.big_gemm(), A100, Precision.FP16)
        slow = estimate_launch_us(
            self.big_gemm(tensor_core_eligible=False), A100, Precision.FP16
        )
        assert slow > fast

    def test_pascal_has_no_tensor_cores(self):
        t16 = estimate_launch_us(self.big_gemm(), GTX_1080TI, Precision.FP16)
        t32 = estimate_launch_us(self.big_gemm(), GTX_1080TI, Precision.FP32)
        assert t16 == pytest.approx(t32)

    def test_tf32_unsupported_on_turing(self):
        t = estimate_launch_us(self.big_gemm(), RTX_2080TI, Precision.TF32)
        t32 = estimate_launch_us(self.big_gemm(), RTX_2080TI, Precision.FP32)
        assert t == pytest.approx(t32)

    def test_overlap_hides_memory(self):
        compute_heavy = self.big_gemm(flops=1e13, dram_read_bytes=1e6)
        overlapped = estimate_launch_us(compute_heavy, A100, Precision.FP16)
        serial = estimate_launch_us(
            self.big_gemm(flops=1e13, dram_read_bytes=1e6, overlapped=False),
            A100,
            Precision.FP16,
        )
        assert serial >= overlapped

    def test_memory_bound_launch(self):
        launch = KernelLaunch(
            name="m",
            kind=LaunchKind.MEMORY,
            dram_read_bytes=1.555e9,  # 1 ms worth on A100
            ctas=100000,
        )
        t = estimate_launch_us(launch, A100, Precision.FP32)
        assert t == pytest.approx(1000.0 + A100.kernel_launch_us, rel=0.01)

    def test_atomic_serialization_penalty(self):
        base = KernelLaunch(
            name="a", kind=LaunchKind.MEMORY, dram_write_bytes=1e9, ctas=100000
        )
        atomic = KernelLaunch(
            name="a", kind=LaunchKind.MEMORY, atomic_write_bytes=1e9, ctas=100000
        )
        assert estimate_launch_us(atomic, A100, Precision.FP32) > estimate_launch_us(
            base, A100, Precision.FP32
        )

    def test_scalar_ops_add_time(self):
        with_scalar = self.big_gemm(scalar_ops=1e11)
        assert estimate_launch_us(
            with_scalar, A100, Precision.FP16
        ) > estimate_launch_us(self.big_gemm(), A100, Precision.FP16)

    def test_small_kernel_underutilises(self):
        one_cta = self.big_gemm(ctas=1, flops=1e9)
        many_cta = self.big_gemm(ctas=100000, flops=1e9)
        assert estimate_launch_us(one_cta, A100, Precision.FP16) > 10 * (
            estimate_launch_us(many_cta, A100, Precision.FP16)
            - A100.kernel_launch_us
        )

    def test_launch_overhead_floor(self):
        tiny = KernelLaunch(name="t", kind=LaunchKind.MAPPING, scalar_ops=1.0)
        assert estimate_launch_us(tiny, A100, Precision.FP32) >= A100.kernel_launch_us

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="x", kind=LaunchKind.GEMM, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            KernelLaunch(name="x", kind=LaunchKind.GEMM, flops=-1)


class TestTrace:
    def test_summary_aggregates(self):
        trace = KernelTrace()
        trace.add(KernelLaunch(name="a", kind=LaunchKind.GEMM, flops=10))
        trace.add(KernelLaunch(name="b", kind=LaunchKind.MEMORY, dram_read_bytes=5))
        s = trace.summary()
        assert s.launches == 2
        assert s.flops == 10
        assert s.dram_bytes == 5

    def test_filter_by_kind(self):
        trace = KernelTrace()
        trace.add(KernelLaunch(name="a", kind=LaunchKind.GEMM))
        trace.add(KernelLaunch(name="b", kind=LaunchKind.MAPPING))
        assert len(trace.filter(LaunchKind.GEMM)) == 1

    def test_filter_by_name(self):
        trace = KernelTrace()
        trace.add(KernelLaunch(name="conv1/main", kind=LaunchKind.GEMM))
        trace.add(KernelLaunch(name="conv2/main", kind=LaunchKind.GEMM))
        assert len(trace.filter_name("conv1")) == 1

    def test_extend_concatenates(self):
        a = KernelTrace([KernelLaunch(name="a", kind=LaunchKind.GEMM)])
        b = KernelTrace([KernelLaunch(name="b", kind=LaunchKind.GEMM)])
        a.extend(b)
        assert len(a) == 2

    def test_trace_latency_is_sum(self):
        launches = [
            KernelLaunch(name=f"l{i}", kind=LaunchKind.GEMM, flops=1e9, ctas=1000)
            for i in range(3)
        ]
        trace = KernelTrace(launches)
        total = estimate_trace_us(trace, A100, "fp16")
        single = estimate_launch_us(launches[0], A100, Precision.FP16)
        assert total == pytest.approx(3 * single)

    def test_breakdown_sums_to_total(self):
        trace = KernelTrace(
            [
                KernelLaunch(name="g", kind=LaunchKind.GEMM, flops=1e9, ctas=100),
                KernelLaunch(name="m", kind=LaunchKind.MAPPING, scalar_ops=1e8),
            ]
        )
        parts = latency_breakdown(trace, RTX_3090, Precision.FP16)
        assert sum(parts.values()) == pytest.approx(
            estimate_trace_us(trace, RTX_3090, Precision.FP16)
        )
        assert set(parts) == {"gemm", "mapping"}


class TestDeviceRegistry:
    def test_aliases(self):
        assert get_device("3090") is RTX_3090
        assert get_device("orin") is JETSON_ORIN
        assert get_device("A100") is A100

    def test_passthrough(self):
        assert get_device(RTX_2080TI) is RTX_2080TI

    def test_unknown_raises(self):
        with pytest.raises(DeviceError):
            get_device("h100")

    def test_tensor_ratio_matches_paper(self):
        # Section 6.1: 16x on A100, ~3x on 2080 Ti.
        assert A100.tensor_to_cuda_ratio == pytest.approx(16.0)
        assert RTX_2080TI.tensor_to_cuda_ratio == pytest.approx(3.0, abs=0.1)

    def test_scaled_device(self):
        half_bw = RTX_3090.scaled(bandwidth_scale=0.5)
        assert half_bw.dram_bw_gbps == pytest.approx(468.0)
        assert half_bw.fp16_tensor_tflops == RTX_3090.fp16_tensor_tflops
        half_fl = RTX_3090.scaled(compute_scale=0.5)
        assert half_fl.fp16_tensor_tflops == pytest.approx(35.5)
        assert half_fl.dram_bw_gbps == RTX_3090.dram_bw_gbps
