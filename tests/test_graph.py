"""Tests for the heterogeneous graph substrate and R-GCN workloads."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    GRAPH_DATASETS,
    GRAPH_ENGINES,
    HeteroGraph,
    RGCN,
    RGCNLayer,
    get_graph_engine,
    make_graph,
    measure_rgcn,
)
from repro.graph.engines import rgcn_layer_trace, rgcn_memory_bytes
from repro.graph.rgcn import dense_reference_rgcn
from repro.precision import Precision


def toy_graph(seed=0, nodes=40, relations=3, edges_per_rel=60):
    rng = np.random.default_rng(seed)
    rels = [
        rng.integers(0, nodes, size=(edges_per_rel, 2))
        for _ in range(relations)
    ]
    return HeteroGraph(nodes, rels)


class TestHeteroGraph:
    def test_counts(self):
        g = toy_graph()
        assert g.num_nodes == 40
        assert g.num_relations == 3
        assert g.num_edges == 180

    def test_in_degrees_sum_to_edges(self):
        g = toy_graph()
        assert g.in_degrees(0).sum() == 60

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            HeteroGraph(5, [np.array([[0, 7]])])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            HeteroGraph(5, [np.array([1, 2, 3])])

    def test_empty_relation_allowed(self):
        g = HeteroGraph(5, [np.zeros((0, 2), dtype=np.int64)])
        assert g.num_edges == 0


class TestSyntheticDatasets:
    def test_statistics_match_configs(self):
        for name, cfg in GRAPH_DATASETS.items():
            if cfg.num_nodes > 100_000:
                continue  # large graphs covered by the benchmark
            g = make_graph(name, seed=0)
            assert g.num_nodes == cfg.num_nodes
            assert g.num_relations == cfg.num_relations
            assert abs(g.num_edges - cfg.num_edges) / cfg.num_edges < 0.05

    def test_degree_skew(self):
        g = make_graph("aifb", seed=0)
        degrees = np.concatenate(
            [np.bincount(e[:, 1], minlength=g.num_nodes)
             for e in g.relations]
        )
        assert degrees.max() > 10 * max(1.0, degrees.mean())

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            make_graph("ogbn-products")

    def test_deterministic(self):
        a = make_graph("mutag", seed=1)
        b = make_graph("mutag", seed=1)
        assert all(
            np.array_equal(x, y) for x, y in zip(a.relations, b.relations)
        )


class TestRGCNNumerics:
    def test_layer_matches_dense_reference(self):
        g = toy_graph(seed=3, nodes=25, relations=2, edges_per_rel=40)
        layer = RGCNLayer.create(2, c_in=6, c_out=5, seed=1)
        feats = np.random.default_rng(2).standard_normal((25, 6)).astype(
            np.float32
        )
        out = layer.forward(g, feats, precision=Precision.FP32)
        expected = dense_reference_rgcn(g, feats, layer)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_two_layer_model_shapes(self):
        g = toy_graph()
        model = RGCN(num_relations=3, in_dim=8, hidden_dim=16, num_classes=4)
        feats = np.zeros((40, 8), dtype=np.float32)
        out = model.forward(g, feats)
        assert out.shape == (40, 4)

    def test_compute_false_skips_numerics(self):
        g = toy_graph()
        layer = RGCNLayer.create(3, 8, 4)
        out = layer.forward(
            g, np.ones((40, 8), dtype=np.float32), compute=False
        )
        assert not out.any()

    def test_relation_mismatch_raises(self):
        g = toy_graph(relations=3)
        layer = RGCNLayer.create(2, 8, 4)
        with pytest.raises(GraphError):
            layer.forward(g, np.zeros((40, 8), dtype=np.float32))


class TestGraphEngines:
    def test_engine_lookup(self):
        assert get_graph_engine("dgl").name == "DGL"
        assert get_graph_engine("TorchSparse++").name == "TorchSparse++"
        with pytest.raises(GraphError):
            get_graph_engine("tensorflow-gnn")

    def test_torchsparsepp_fastest_and_smallest(self):
        g = make_graph("aifb", seed=0)
        results = {
            name: measure_rgcn(name, g, "aifb")
            for name in GRAPH_ENGINES
        }
        ts = results["torchsparse++"]
        for name, m in results.items():
            if name == "torchsparse++":
                continue
            assert m.latency_ms > ts.latency_ms, name
            assert m.memory_mb > ts.memory_mb, name

    def test_dgl_slowest(self):
        g = make_graph("mutag", seed=0)
        dgl = measure_rgcn("dgl", g).latency_ms
        others = [
            measure_rgcn(n, g).latency_ms
            for n in ("pyg", "graphiler", "torchsparse++")
        ]
        assert dgl > max(others)

    def test_per_relation_pipeline_has_more_launches(self):
        g = make_graph("aifb", seed=0)
        dgl_trace = rgcn_layer_trace(
            get_graph_engine("dgl"), g, 32, 32, Precision.FP16
        )
        ts_trace = rgcn_layer_trace(
            get_graph_engine("torchsparse++"), g, 32, 32, Precision.FP16
        )
        assert len(dgl_trace) > 10 * len(ts_trace)

    def test_memory_accounts_edge_workspace(self):
        g = make_graph("mutag", seed=0)
        dgl = rgcn_memory_bytes(
            get_graph_engine("dgl"), g, 32, 32, Precision.FP16
        )
        ts = rgcn_memory_bytes(
            get_graph_engine("torchsparse++"), g, 32, 32, Precision.FP16
        )
        assert dgl > 2 * ts
