"""Happens-before race detector tests (``repro.analyze.hb``).

Four layers of coverage:

* pure HB-relation properties (transitivity, cycle handling);
* the ISSUE's property test — on seeded random DAGs, the transitive
  reduction never removes a sync edge whose ordering was required:
  the HB closure is bit-identical before and after reduction;
* adversarial fixtures from ``tests/broken_schedules.py``: every
  tampered schedule of a real workload trace is rejected, with the
  race message naming the buffer and both launches;
* the CLI contract: ``--verify`` exits 0 on the scheduler's own output
  and 1 on a tampered ``--schedule-json`` document.
"""

import dataclasses
import json
import random

import pytest

from repro.analyze.depgraph import DependenceGraph
from repro.analyze.hb import (
    MALFORMED_SCHEDULE_INVARIANT,
    MALFORMED_SYNC_INVARIANT,
    RACE_INVARIANT,
    HappensBefore,
    SyncEvent,
    check_schedule,
    find_redundant_events,
    redundant_sync_edges,
)
from repro.cli import main
from repro.gpusim.engine import estimate_trace_us
from repro.hw import get_device
from repro.opt.schedule import (
    best_schedule,
    list_schedule,
    schedule_report_json,
)
from repro.precision import Precision
from tests.broken_schedules import (
    TAMPERS,
    healthy_schedule,
    workload_trace,
)
from tests.test_opt_scheduler import random_dag_trace

A100 = get_device("a100")
FP16 = Precision.FP16

WORKLOAD = "SK-M-0.5"
FAST = ["--scale", "0.1", "--batch", "1"]


# --------------------------------------------------------------------- #
# shared workload fixture (one trace build for the whole module)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload_case():
    launches = workload_trace()
    graph = DependenceGraph.build(launches)
    schedule = healthy_schedule(launches, graph)
    return launches, graph, schedule


# --------------------------------------------------------------------- #
# HB relation basics
# --------------------------------------------------------------------- #
class TestHappensBefore:
    def test_transitive_chain(self):
        hb = HappensBefore(3, [(0, 1), (1, 2)])
        assert hb.acyclic
        assert hb.ordered(0, 1)
        assert hb.ordered(0, 2)
        assert hb.ordered(1, 2)
        assert not hb.ordered(2, 0)
        assert not hb.ordered(1, 0)

    def test_reflexive(self):
        hb = HappensBefore(2, [])
        assert hb.ordered(0, 0)
        assert not hb.ordered(0, 1)

    def test_cycle_is_conservative(self):
        hb = HappensBefore(2, [(0, 1), (1, 0)])
        assert not hb.acyclic
        assert not hb.ordered(0, 1)
        assert not hb.ordered(1, 0)

    def test_diamond(self):
        hb = HappensBefore(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert hb.ordered(0, 3)
        assert not hb.ordered(1, 2)
        assert not hb.ordered(2, 1)


# --------------------------------------------------------------------- #
# the ISSUE property test: reduction never removes a required ordering
# --------------------------------------------------------------------- #
def _random_hb_instance(rng):
    """Random per-stream chains + random forward sync edges.

    Node index order is a valid topological order by construction, so
    the instance is always acyclic — the setting the reduction is
    specified for.
    """
    n = rng.randrange(8, 25)
    streams = rng.randrange(2, 5)
    chains = [[] for _ in range(streams)]
    for node in range(n):
        chains[rng.randrange(streams)].append(node)
    program = []
    for chain in chains:
        program.extend(zip(chain, chain[1:]))
    sync = []
    for _ in range(rng.randrange(1, 2 * n)):
        a = rng.randrange(n - 1)
        b = rng.randrange(a + 1, n)
        sync.append((a, b))
    return n, program, sync


class TestTransitiveReductionProperty:
    @pytest.mark.parametrize("seed", range(30))
    def test_reduction_preserves_closure(self, seed):
        rng = random.Random(seed)
        n, program, sync = _random_hb_instance(rng)
        before = HappensBefore(n, program + sync)
        removed = set(redundant_sync_edges(n, program, sync))
        kept = [e for i, e in enumerate(sync) if i not in removed]
        after = HappensBefore(n, program + kept)
        assert after.acyclic
        for a in range(n):
            for b in range(n):
                assert before.ordered(a, b) == after.ordered(a, b), (
                    f"reduction changed HB({a}, {b}) with seed {seed}"
                )

    @pytest.mark.parametrize("seed", range(10))
    def test_reduction_is_idempotent(self, seed):
        rng = random.Random(1000 + seed)
        n, program, sync = _random_hb_instance(rng)
        removed = set(redundant_sync_edges(n, program, sync))
        kept = [e for i, e in enumerate(sync) if i not in removed]
        assert redundant_sync_edges(n, program, kept) == []


# --------------------------------------------------------------------- #
# scheduler output verifies clean on random DAGs and real workloads
# --------------------------------------------------------------------- #
class TestScheduleVerifiesClean:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("streams", (2, 4))
    def test_random_dag_schedule_is_race_free(self, seed, streams):
        trace = random_dag_trace(seed)
        launches = list(trace)
        graph = DependenceGraph.build(launches)
        schedule = list_schedule(launches, A100, FP16, streams, graph)
        assert check_schedule(launches, schedule, graph) == []
        assert find_redundant_events(schedule) == []
        assert (
            schedule.critical_path_us
            <= schedule.makespan_us
            <= schedule.serialized_us * (1 + 1e-9)
        )

    def test_workload_schedule_is_race_free(self, workload_case):
        launches, graph, schedule = workload_case
        assert check_schedule(launches, schedule, graph) == []
        assert find_redundant_events(schedule) == []

    def test_events_are_cross_stream_and_charged(self, workload_case):
        launches, _, schedule = workload_case
        assert schedule.events
        assert schedule.sync_event_us == A100.sync_event_us > 0.0
        assert schedule.sync_us == len(schedule.events) * A100.sync_event_us
        stream_of = {a.index: a.stream for a in schedule.assignments}
        ids = [e.event_id for e in schedule.events]
        assert len(set(ids)) == len(ids)
        for event in schedule.events:
            assert event.record_stream != event.wait_stream
            assert stream_of[event.record_index] == event.record_stream
            assert stream_of[event.wait_index] == event.wait_stream

    def test_single_stream_needs_no_events(self, workload_case):
        launches, graph, _ = workload_case
        schedule = list_schedule(launches, A100, FP16, 1, graph)
        assert schedule.events == ()
        assert schedule.makespan_us == estimate_trace_us(
            launches, A100, FP16
        )


# --------------------------------------------------------------------- #
# adversarial fixtures: every tamper is rejected with a race report
# --------------------------------------------------------------------- #
class TestTamperedSchedules:
    @pytest.mark.parametrize("kind", sorted(TAMPERS))
    def test_tamper_is_rejected(self, kind, workload_case):
        launches, graph, schedule = workload_case
        tampered = TAMPERS[kind](launches, graph, schedule)
        violations = check_schedule(launches, tampered, graph)
        assert violations, f"{kind} tamper was not detected"
        invariants = {v.invariant for v in violations}
        assert RACE_INVARIANT in invariants
        race = next(v for v in violations if v.invariant == RACE_INVARIANT)
        assert "buffer" in race.message
        assert "launch" in race.message
        assert race.launch is not None

    def test_reorder_names_the_stream_reorder(self, workload_case):
        launches, graph, schedule = workload_case
        tampered = TAMPERS["reordered-placement"](launches, graph, schedule)
        violations = check_schedule(launches, tampered, graph)
        assert any(
            "reordered within their stream" in v.message for v in violations
        )


# --------------------------------------------------------------------- #
# malformed schedules and sync events (structure before HB reasoning)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def small_case():
    trace = random_dag_trace(3, n=12)
    launches = list(trace)
    graph = DependenceGraph.build(launches)
    schedule = list_schedule(launches, A100, FP16, 2, graph)
    assert check_schedule(launches, schedule, graph) == []
    return launches, graph, schedule


def _invariants(violations):
    return {v.invariant for v in violations}


class TestMalformedSchedules:
    def test_duplicate_index_is_flagged(self, small_case):
        launches, graph, schedule = small_case
        first = schedule.assignments[0]
        tampered = dataclasses.replace(
            schedule,
            assignments=(
                dataclasses.replace(schedule.assignments[1], index=first.index),
            ) + schedule.assignments[1:],
        )
        violations = check_schedule(launches, tampered, graph)
        assert MALFORMED_SCHEDULE_INVARIANT in _invariants(violations)

    def test_negative_duration_is_flagged(self, small_case):
        launches, graph, schedule = small_case
        victim = schedule.assignments[0]
        tampered = dataclasses.replace(
            schedule,
            assignments=(
                dataclasses.replace(
                    victim, start_us=victim.end_us + 1.0
                ),
            ) + schedule.assignments[1:],
        )
        violations = check_schedule(launches, tampered, graph)
        assert MALFORMED_SCHEDULE_INVARIANT in _invariants(violations)

    def test_out_of_range_stream_is_flagged(self, small_case):
        launches, graph, schedule = small_case
        victim = schedule.assignments[0]
        tampered = dataclasses.replace(
            schedule,
            assignments=(
                dataclasses.replace(victim, stream=schedule.streams + 7),
            ) + schedule.assignments[1:],
        )
        violations = check_schedule(launches, tampered, graph)
        assert MALFORMED_SCHEDULE_INVARIANT in _invariants(violations)

    def test_event_with_bad_index_is_flagged(self, small_case):
        launches, graph, schedule = small_case
        bogus = SyncEvent(
            event_id=999,
            record_index=len(launches) + 5,
            record_stream=0,
            wait_index=0,
            wait_stream=0,
        )
        tampered = dataclasses.replace(
            schedule, events=schedule.events + (bogus,)
        )
        violations = check_schedule(launches, tampered, graph)
        assert MALFORMED_SYNC_INVARIANT in _invariants(violations)

    def test_event_with_wrong_stream_claim_is_flagged(self, small_case):
        launches, graph, schedule = small_case
        stream_of = {a.index: a.stream for a in schedule.assignments}
        a, b = 0, 1
        bogus = SyncEvent(
            event_id=998,
            record_index=a,
            record_stream=stream_of[a] + 1,
            wait_index=b,
            wait_stream=stream_of[b],
        )
        tampered = dataclasses.replace(
            schedule, events=schedule.events + (bogus,)
        )
        violations = check_schedule(launches, tampered, graph)
        assert MALFORMED_SYNC_INVARIANT in _invariants(violations)


# --------------------------------------------------------------------- #
# CLI contract: --verify exits 0 clean / 1 on a tampered document
# --------------------------------------------------------------------- #
def run_cli(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestCliVerify:
    def test_verify_clean_exits_zero(self, capsys):
        rc, out, _ = run_cli(
            capsys, ["depgraph", WORKLOAD, *FAST, "--schedule", "--verify"]
        )
        assert rc == 0
        assert "schedule verification" in out
        assert "sync events" in out

    def test_verify_json_lists_empty_verification(self, capsys):
        rc, out, _ = run_cli(
            capsys,
            ["depgraph", WORKLOAD, *FAST, "--schedule", "--verify", "--json"],
        )
        assert rc == 0
        doc = json.loads(out)
        assert doc["schedule_verification"] == []
        assert doc["schedule"]["sync_events"] == len(doc["schedule"]["events"])

    def test_tampered_document_exits_one(
        self, capsys, tmp_path, workload_case
    ):
        launches, graph, schedule = workload_case
        tampered = TAMPERS["dropped-sync"](launches, graph, schedule)
        doc_path = tmp_path / "tampered.json"
        doc_path.write_text(json.dumps(schedule_report_json(tampered)))
        rc, out, _ = run_cli(
            capsys,
            [
                "depgraph", WORKLOAD, *FAST,
                "--schedule-json", str(doc_path), "--verify",
            ],
        )
        assert rc == 1
        assert RACE_INVARIANT in out

    def test_tampered_document_json_reports_violations(
        self, capsys, tmp_path, workload_case
    ):
        launches, graph, schedule = workload_case
        tampered = TAMPERS["wrong-stream-wait"](launches, graph, schedule)
        doc_path = tmp_path / "tampered.json"
        doc_path.write_text(json.dumps(schedule_report_json(tampered)))
        rc, out, _ = run_cli(
            capsys,
            [
                "depgraph", WORKLOAD, *FAST,
                "--schedule-json", str(doc_path), "--verify", "--json",
            ],
        )
        assert rc == 1
        doc = json.loads(out)
        assert doc["schedule_verification"]
        assert any(
            v["invariant"] == RACE_INVARIANT
            for v in doc["schedule_verification"]
        )


# --------------------------------------------------------------------- #
# sync-aware best_schedule: monotone, bounded, smallest-K on ties
# --------------------------------------------------------------------- #
class TestSyncAwareBestSchedule:
    @pytest.mark.parametrize("seed", range(4))
    def test_monotone_and_bounded(self, seed):
        trace = random_dag_trace(100 + seed)
        launches = list(trace)
        graph = DependenceGraph.build(launches)
        serialized = estimate_trace_us(launches, A100, FP16)
        previous = None
        for streams in (1, 2, 4, 8):
            schedule = best_schedule(launches, A100, FP16, streams, graph)
            assert schedule.makespan_us <= serialized * (1 + 1e-9)
            assert (
                schedule.critical_path_us
                <= schedule.makespan_us * (1 + 1e-9)
            )
            if previous is not None:
                assert schedule.makespan_us <= previous * (1 + 1e-9)
            previous = schedule.makespan_us

    def test_huge_sync_cost_falls_back_to_serial(self):
        trace = random_dag_trace(7)
        launches = list(trace)
        graph = DependenceGraph.build(launches)
        expensive = dataclasses.replace(A100, sync_event_us=1e9)
        schedule = best_schedule(launches, expensive, FP16, 4, graph)
        assert schedule.events == ()
        assert schedule.makespan_us == estimate_trace_us(
            launches, expensive, FP16
        )
