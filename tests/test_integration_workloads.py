"""Integration tests: all seven workloads end to end at reduced scale."""

import numpy as np
import pytest

from repro.baselines import get_engine
from repro.data.datasets import make_sample
from repro.models import WORKLOADS, get_workload
from repro.nn import ExecutionContext


@pytest.fixture(scope="module")
def small_inputs():
    """Reduced-resolution samples for every workload (shared)."""
    out = {}
    for workload in WORKLOADS.values():
        out[workload.id] = make_sample(
            workload.dataset, frames=min(workload.frames, 2),
            seed=0, scale=0.1,
        )
    return out


class TestAllWorkloadsForward:
    @pytest.mark.parametrize("workload_id", sorted(WORKLOADS))
    def test_forward_simulated(self, small_inputs, workload_id):
        workload = get_workload(workload_id)
        model = workload.build_model()
        model.eval()
        ctx = ExecutionContext(simulate_only=True)
        out = model(small_inputs[workload_id], ctx)
        assert out.num_points > 0
        assert ctx.latency_us() > 0
        kinds = set(ctx.breakdown_us())
        assert {"gemm", "mapping"} <= kinds

    @pytest.mark.parametrize("workload_id", ["SK-M-0.5", "WM-C-1f"])
    def test_training_simulated(self, small_inputs, workload_id):
        workload = get_workload(workload_id)
        model = workload.build_model()
        model.train()
        ctx = ExecutionContext(simulate_only=True, training=True)
        sample = small_inputs[workload_id]
        sample.cache.clear()
        out = model(sample, ctx)
        grad = model.backward(
            np.zeros(out.feats.shape, dtype=np.float16), ctx
        )
        assert grad.shape == sample.feats.shape
        # Training must cost more than inference did.
        assert ctx.latency_us() > 0


class TestEngineConsistency:
    def test_all_engines_run_all_detection_workloads(self, small_inputs):
        workload = get_workload("WM-C-1f")
        model = workload.build_model()
        model.eval()
        sample = small_inputs["WM-C-1f"]
        latencies = {}
        for name in ("minkowskiengine", "spconv1", "torchsparse",
                     "spconv2", "torchsparse++"):
            engine = get_engine(name)
            engine.prepare(model, [sample], "a100", "fp16")
            ctx = engine.make_context("a100", "fp16")
            ctx.simulate_only = True
            model(sample, ctx)
            latencies[engine.name] = ctx.latency_us()
        assert latencies["TorchSparse++"] == min(latencies.values())

    def test_engines_numerically_equivalent(self, small_inputs):
        """Section 5.2's accuracy-parity claim: every engine computes the
        same convolution, so model outputs agree across engines."""
        workload = get_workload("NS-M-1f")
        model = workload.build_model()
        model.eval()
        sample = small_inputs["NS-M-1f"]
        outputs = {}
        for name in ("torchsparse", "spconv2", "torchsparse++"):
            engine = get_engine(name)
            sample.cache.clear()
            ctx = engine.make_context("a100", "fp32")
            out = model(sample, ctx)
            outputs[name] = out.feats.astype(np.float32)
        ref = outputs["torchsparse"]
        for name, feats in outputs.items():
            np.testing.assert_allclose(feats, ref, rtol=1e-4, atol=1e-5,
                                       err_msg=name)

    def test_deterministic_simulated_latency(self, small_inputs):
        workload = get_workload("NS-M-1f")
        model = workload.build_model()
        model.eval()
        sample = small_inputs["NS-M-1f"]
        results = []
        for _ in range(2):
            sample.cache.clear()
            ctx = ExecutionContext(simulate_only=True)
            model(sample, ctx)
            results.append(ctx.latency_us())
        assert results[0] == pytest.approx(results[1], rel=1e-12)


class TestReducedScaleGenerator:
    def test_scale_shrinks_point_count(self):
        full = make_sample("nuscenes", seed=1, scale=1.0)
        small = make_sample("nuscenes", seed=1, scale=0.1)
        assert small.num_points < 0.5 * full.num_points

    def test_invalid_scale(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_sample("nuscenes", scale=0.0)
