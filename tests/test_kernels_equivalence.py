"""Cross-dataflow numerical equivalence tests.

Every dataflow must compute exactly the same sparse convolution; this module
checks them against a brute-force dense reference and against each other,
over random geometries, strides, kernel sizes and precisions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    ImplicitGemmConfig,
    fetch_on_demand,
    gather_gemm_scatter,
    implicit_gemm,
    run_dataflow,
)
from repro.kernels.base import KernelSchedule
from repro.precision import Precision
from repro.sparse.kmap import build_kernel_map
from repro.sparse.kernel_offsets import kernel_offsets


def random_coords(n, ndim=3, extent=12, batches=1, seed=0):
    rng = np.random.default_rng(seed)
    spatial = rng.integers(0, extent, size=(4 * n, ndim))
    batch = rng.integers(0, batches, size=(4 * n, 1))
    coords = np.concatenate([batch, spatial], axis=1).astype(np.int32)
    unique = np.unique(coords, axis=0)
    rng.shuffle(unique)
    return unique[:n]


def dense_reference(coords, feats, weights, kmap):
    """Brute-force evaluation of Equation 1 via the map's own pairs-free
    definition: direct coordinate arithmetic against the offset table."""
    out = np.zeros((kmap.num_outputs, weights.shape[2]), dtype=np.float64)
    lookup = {tuple(c): i for i, c in enumerate(coords.tolist())}
    for n, q in enumerate(kmap.out_coords):
        for k, delta in enumerate(kmap.offsets):
            p = (q[0], *(q[1:] + delta))
            j = lookup.get(tuple(int(v) for v in p))
            if j is not None:
                out[n] += feats[j].astype(np.float64) @ weights[k].astype(np.float64)
    return out


@pytest.fixture(scope="module")
def workload():
    coords = random_coords(60, seed=1)
    rng = np.random.default_rng(2)
    c_in, c_out = 5, 7
    feats = rng.standard_normal((len(coords), c_in)).astype(np.float32)
    weights = rng.standard_normal((27, c_in, c_out)).astype(np.float32) * 0.1
    kmap = build_kernel_map(coords, kernel_size=3)
    return coords, feats, weights, kmap


ALL_DATAFLOWS = [
    "gather_scatter",
    "gather_scatter_fused",
    "fetch_on_demand",
    "fetch_on_demand_unfused",
    "implicit_gemm",
]


class TestAgainstDenseReference:
    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
    def test_submanifold_matches_reference(self, workload, dataflow):
        coords, feats, weights, kmap = workload
        expected = dense_reference(coords, feats, weights, kmap)
        out, _ = run_dataflow(dataflow, feats, weights, kmap)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
    def test_strided_matches_reference(self, dataflow):
        coords = random_coords(50, seed=5)
        rng = np.random.default_rng(6)
        feats = rng.standard_normal((len(coords), 4)).astype(np.float32)
        weights = rng.standard_normal((8, 4, 6)).astype(np.float32) * 0.1
        kmap = build_kernel_map(coords, kernel_size=2, stride=2)
        expected = dense_reference(coords, feats, weights, kmap)
        out, _ = run_dataflow(dataflow, feats, weights, kmap)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_2d_convolution(self):
        coords = random_coords(30, ndim=2, seed=9)
        rng = np.random.default_rng(10)
        feats = rng.standard_normal((len(coords), 3)).astype(np.float32)
        weights = rng.standard_normal((9, 3, 3)).astype(np.float32) * 0.1
        kmap = build_kernel_map(coords, kernel_size=3)
        expected = dense_reference(coords, feats, weights, kmap)
        out, _ = implicit_gemm(feats, weights, kmap)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)


class TestCrossDataflowAgreement:
    # Pairwise dataflow-vs-gather_scatter checks moved to the differential
    # grid in test_dataflow_differential.py, which compares every
    # registered dataflow against the dense reference instead.

    @pytest.mark.parametrize("split", [0, 1, 2, 3, 4])
    def test_splits_do_not_change_results(self, workload, split):
        _, feats, weights, kmap = workload
        base, _ = implicit_gemm(feats, weights, kmap)
        cfg = ImplicitGemmConfig.from_paper_notation(split)
        out, _ = implicit_gemm(feats, weights, kmap, config=cfg)
        np.testing.assert_allclose(out, base, rtol=1e-6)

    def test_fp16_storage_quantizes(self, workload):
        _, feats, weights, kmap = workload
        out16, _ = implicit_gemm(feats, weights, kmap, precision=Precision.FP16)
        out32, _ = implicit_gemm(feats, weights, kmap, precision=Precision.FP32)
        assert out16.dtype == np.float16
        assert out32.dtype == np.float32
        np.testing.assert_allclose(
            out16.astype(np.float32), out32, rtol=2e-2, atol=2e-2
        )

    def test_empty_offsets_handled(self):
        # Two isolated points: only the identity offset has pairs.
        coords = np.array([[0, 0, 0, 0], [0, 9, 9, 9]], dtype=np.int32)
        rng = np.random.default_rng(0)
        feats = rng.standard_normal((2, 3)).astype(np.float32)
        weights = rng.standard_normal((27, 3, 4)).astype(np.float32)
        kmap = build_kernel_map(coords, kernel_size=3)
        expected = feats @ weights[13]
        for dataflow in ALL_DATAFLOWS:
            out, _ = run_dataflow(dataflow, feats, weights, kmap)
            np.testing.assert_allclose(out, expected, rtol=1e-5)

    @given(
        seed=st.integers(0, 1000),
        c_in=st.integers(1, 8),
        c_out=st.integers(1, 8),
        kernel=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_all_dataflows_agree(self, seed, c_in, c_out, kernel):
        coords = random_coords(25, extent=6, seed=seed)
        rng = np.random.default_rng(seed + 1)
        feats = rng.standard_normal((len(coords), c_in)).astype(np.float32)
        volume = kernel ** 3
        weights = rng.standard_normal((volume, c_in, c_out)).astype(np.float32)
        kmap = build_kernel_map(coords, kernel_size=kernel)
        results = [
            run_dataflow(d, feats, weights, kmap)[0] for d in ALL_DATAFLOWS
        ]
        for other in results[1:]:
            np.testing.assert_allclose(other, results[0], rtol=1e-4, atol=1e-5)


class TestTraceShapes:
    def test_gather_scatter_three_launches_per_offset(self, workload):
        _, feats, weights, kmap = workload
        _, trace = gather_gemm_scatter(feats, weights, kmap, fused=False)
        nonempty = int(np.count_nonzero(kmap.map_sizes))
        assert len(trace) == 3 * nonempty + 1  # + writeback

    def test_fused_gather_scatter_fewer_launches(self, workload):
        _, feats, weights, kmap = workload
        _, plain = gather_gemm_scatter(feats, weights, kmap, fused=False)
        _, fused = gather_gemm_scatter(feats, weights, kmap, fused=True)
        assert len(fused) < len(plain)

    def test_fetch_on_demand_fused_single_compute_launch(self, workload):
        _, feats, weights, kmap = workload
        _, trace = fetch_on_demand(feats, weights, kmap, block_fused=True)
        assert len(trace) == 2  # fused compute + writeback

    def test_fetch_on_demand_write_amplification(self, workload):
        _, feats, weights, kmap = workload
        _, fod = fetch_on_demand(feats, weights, kmap)
        _, ig = implicit_gemm(feats, weights, kmap)
        fod_main = fod.filter_name("fused").launches[0]
        ig_main = ig.filter_name("main").launches[0]
        fod_writes = fod_main.atomic_write_bytes + fod_main.dram_write_bytes
        ig_writes = ig_main.atomic_write_bytes + ig_main.dram_write_bytes
        # Write amplification equals mean neighbour count (4-10x in real
        # workloads; ~1.8x in this tiny fixture).
        assert fod_writes == pytest.approx(ig_writes * kmap.mean_neighbors)

    def test_implicit_gemm_has_minimum_writes(self, workload):
        _, feats, weights, kmap = workload
        cfg = ImplicitGemmConfig(num_splits=1, sort=False)
        _, trace = implicit_gemm(feats, weights, kmap, config=cfg)
        main = trace.filter_name("main").launches[0]
        c_out = weights.shape[2]
        assert main.dram_write_bytes == pytest.approx(
            4 * kmap.num_outputs * c_out
        )

    def test_sorting_adds_mapping_launches(self, workload):
        _, feats, weights, kmap = workload
        _, unsorted = implicit_gemm(
            feats, weights, kmap, config=ImplicitGemmConfig(sort=False)
        )
        _, sorted_ = implicit_gemm(
            feats, weights, kmap, config=ImplicitGemmConfig(sort=True)
        )
        assert len(sorted_.filter_name("mapping")) == 3
        assert len(unsorted.filter_name("mapping")) == 0

    def test_splits_add_reduction(self, workload):
        _, feats, weights, kmap = workload
        _, trace = implicit_gemm(
            feats, weights, kmap, config=ImplicitGemmConfig(num_splits=3)
        )
        assert len(trace.filter_name("reduce")) == 1

    def test_sorting_reduces_issued_flops(self):
        coords = random_coords(600, extent=16, seed=3)
        rng = np.random.default_rng(4)
        feats = rng.standard_normal((len(coords), 16)).astype(np.float32)
        weights = rng.standard_normal((27, 16, 16)).astype(np.float32)
        kmap = build_kernel_map(coords, kernel_size=3)
        schedule = KernelSchedule(tile_m=32, warp_rows=32)
        _, unsorted = implicit_gemm(
            feats, weights, kmap, schedule,
            config=ImplicitGemmConfig(sort=False),
        )
        _, sorted_ = implicit_gemm(
            feats, weights, kmap, schedule,
            config=ImplicitGemmConfig(sort=True),
        )
        unsorted_flops = unsorted.filter_name("main").summary().flops
        sorted_flops = sorted_.filter_name("main").summary().flops
        assert sorted_flops < unsorted_flops

    def test_online_reorder_adds_scalar_ops(self, workload):
        _, feats, weights, kmap = workload
        _, offline = implicit_gemm(
            feats, weights, kmap,
            config=ImplicitGemmConfig(sort=True, offline_reorder=True),
        )
        _, online = implicit_gemm(
            feats, weights, kmap,
            config=ImplicitGemmConfig(sort=True, offline_reorder=False),
        )
        off_main = offline.filter_name("main").summary().scalar_ops
        on_main = online.filter_name("main").summary().scalar_ops
        assert on_main > off_main
        # ... and offline has the extra reorder launch instead.
        assert len(offline.filter_name("reorder")) == 1
        assert len(online.filter_name("reorder")) == 0
