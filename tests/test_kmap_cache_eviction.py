"""KmapCache LRU eviction semantics and accounting purity (satellite)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.cache import KmapCache, KmapEntry, scene_key


def _entry(tag="x"):
    return KmapEntry(sample=object(), charge_keys=frozenset({(tag,)}))


def _keys(*seeds):
    return [scene_key("SK-M-0.5", s) for s in seeds]


class TestLRUOrder:
    def test_evicts_least_recently_used_first(self):
        cache = KmapCache(capacity=2)
        a, b, c = _keys(1, 2, 3)
        cache.put(a, _entry("a"))
        cache.put(b, _entry("b"))
        cache.put(c, _entry("c"))
        assert a not in cache
        assert b in cache and c in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = KmapCache(capacity=2)
        a, b, c = _keys(1, 2, 3)
        cache.put(a, _entry("a"))
        cache.put(b, _entry("b"))
        assert cache.get(a) is not None  # a becomes most-recent
        cache.put(c, _entry("c"))
        assert b not in cache
        assert a in cache

    def test_put_refreshes_recency_on_overwrite(self):
        cache = KmapCache(capacity=2)
        a, b, c = _keys(1, 2, 3)
        cache.put(a, _entry("a"))
        cache.put(b, _entry("b"))
        cache.put(a, _entry("a2"))  # overwrite refreshes a
        cache.put(c, _entry("c"))
        assert b not in cache
        assert a in cache and cache.evictions == 1

    def test_warm_keys_lru_first_under_churn(self):
        cache = KmapCache(capacity=3)
        a, b, c = _keys(1, 2, 3)
        for key, tag in ((a, "a"), (b, "b"), (c, "c")):
            cache.put(key, _entry(tag))
        cache.get(a)
        assert cache.warm_keys() == (b, c, a)

    def test_eviction_counter_accumulates(self):
        cache = KmapCache(capacity=1)
        keys = _keys(*range(5))
        for key in keys:
            cache.put(key, _entry())
        assert cache.evictions == 4
        assert len(cache) == 1
        assert keys[-1] in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            KmapCache(capacity=0)


class TestAccountingPurity:
    def test_peek_never_perturbs_accounting_or_order(self):
        cache = KmapCache(capacity=2)
        a, b, c = _keys(1, 2, 3)
        cache.put(a, _entry("a"))
        cache.put(b, _entry("b"))
        hits, misses = cache.hits, cache.misses
        entry = cache.peek(a)
        assert entry is not None and entry.uses == 0
        assert cache.peek(_keys(9)[0]) is None
        assert (cache.hits, cache.misses) == (hits, misses)
        # a's recency was NOT refreshed by peek: it evicts first.
        cache.put(c, _entry("c"))
        assert a not in cache

    def test_contains_never_perturbs_accounting_or_order(self):
        cache = KmapCache(capacity=2)
        a, b, c = _keys(1, 2, 3)
        cache.put(a, _entry("a"))
        cache.put(b, _entry("b"))
        hits, misses = cache.hits, cache.misses
        assert a in cache
        assert _keys(9)[0] not in cache
        assert (cache.hits, cache.misses) == (hits, misses)
        cache.put(c, _entry("c"))
        assert a not in cache

    def test_batch_fingerprint_is_read_only(self):
        cache = KmapCache(capacity=2)
        a, b = _keys(1, 2)
        cache.put(a, _entry("a"))
        hits, misses, evictions = cache.hits, cache.misses, cache.evictions
        order = cache.warm_keys()
        cache.batch_fingerprint((a, b, a))
        cache.batch_fingerprint((a, b, a), ordered=True)
        assert (cache.hits, cache.misses, cache.evictions) == (
            hits, misses, evictions,
        )
        assert cache.warm_keys() == order

    def test_get_counts_hits_and_uses(self):
        cache = KmapCache(capacity=2)
        (a,) = _keys(1)
        cache.put(a, _entry("a"))
        assert cache.get(a).uses == 1
        assert cache.get(_keys(9)[0]) is None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
