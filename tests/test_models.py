"""Tests for the model zoo (MinkUNet, CenterPoint backbone, workloads)."""

import numpy as np
import pytest

from repro.models import CenterPointBackbone, MinkUNet, WORKLOADS, get_workload
from repro.models.registry import DETECTION_WORKLOADS, SEGMENTATION_WORKLOADS
from repro.nn import ExecutionContext
from repro.sparse import SparseTensor
from repro.errors import ConfigError


def small_cloud(n=400, extent=24, channels=4, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((len(coords), channels)).astype(np.float32)
    return SparseTensor(coords, feats)


class TestMinkUNet:
    def test_forward_output_on_input_coords(self):
        model = MinkUNet(in_channels=4, num_classes=19, width=0.25)
        x = small_cloud()
        ctx = ExecutionContext(simulate_only=True)
        y = model(x, ctx)
        assert np.array_equal(y.coords, x.coords)
        assert y.num_channels == 19

    def test_width_scales_parameters(self):
        small = MinkUNet(width=0.5).num_parameters()
        large = MinkUNet(width=1.0).num_parameters()
        assert large > 3 * small

    def test_training_roundtrip(self):
        model = MinkUNet(in_channels=4, num_classes=5, width=0.25)
        model.train()
        x = small_cloud()
        ctx = ExecutionContext(training=True, simulate_only=True)
        y = model(x, ctx)
        grad = model.backward(
            np.zeros(y.feats.shape, dtype=np.float16), ctx
        )
        assert grad.shape == x.feats.shape
        assert all(p.grad is not None for p in model.parameters())

    def test_backward_gradients_flow_numerically(self):
        # Non-simulated small model: gradients should be finite & nonzero.
        model = MinkUNet(in_channels=4, num_classes=3, width=0.25)
        model.train()
        x = small_cloud(n=150, extent=10)
        ctx = ExecutionContext(precision="fp32", training=True)
        y = model(x, ctx)
        model.backward((y.feats - 1.0).astype(np.float32), ctx)
        grads = [p.grad for p in model.parameters()]
        assert all(np.isfinite(g).all() for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_unet_has_distinct_stride_levels(self):
        model = MinkUNet(width=0.25)
        x = small_cloud()
        ctx = ExecutionContext(simulate_only=True)
        from repro.tune import discover_groups

        sigs, _ = discover_groups(model, x, ctx)
        strides = {sig[0] for sig in sigs}
        assert (16, 16, 16) in strides  # four downsamplings deep


class TestCenterPoint:
    def test_forward_downsamples_16x(self):
        model = CenterPointBackbone(in_channels=5)
        x = small_cloud(extent=40, channels=5)
        ctx = ExecutionContext(simulate_only=True)
        y = model(x, ctx)
        assert y.stride == (16, 16, 16)
        assert y.num_channels == 128

    def test_training_roundtrip(self):
        model = CenterPointBackbone(in_channels=5)
        model.train()
        x = small_cloud(extent=40, channels=5)
        ctx = ExecutionContext(training=True, simulate_only=True)
        y = model(x, ctx)
        grad = model.backward(np.zeros(y.feats.shape, dtype=np.float16), ctx)
        assert grad.shape == x.feats.shape


class TestWorkloadRegistry:
    def test_seven_workloads(self):
        assert len(WORKLOADS) == 7
        assert len(SEGMENTATION_WORKLOADS) == 4
        assert len(DETECTION_WORKLOADS) == 3

    def test_lookup_case_insensitive(self):
        assert get_workload("sk-m-0.5").id == "SK-M-0.5"

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            get_workload("kitti-pointpillars")

    def test_build_model_matches_dataset_channels(self):
        w = get_workload("WM-C-1f")
        model = w.build_model()
        assert model.input_conv[0].in_channels == 5

    def test_workload_input_generation(self):
        w = get_workload("NS-M-1f")
        x = w.make_input(seed=0)
        assert x.num_points > 5000
        assert x.num_channels == 4
