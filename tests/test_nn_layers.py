"""Tests for the nn layer substrate: conv, norm, activation, blocks."""

import numpy as np
import pytest

from repro.errors import ConfigError, MapError
from repro.gpusim.trace import LaunchKind
from repro.nn import (
    BatchNorm,
    ConvBlock,
    ExecutionContext,
    FixedPolicy,
    LayerConfig,
    ReLU,
    ResidualBlock,
    Sequential,
    SparseConv3d,
)
from repro.nn.context import GroupPolicy, Role
from repro.kernels.registry import Dataflow
from repro.sparse import SparseTensor


def make_tensor(n=200, extent=15, channels=4, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((len(coords), channels)).astype(np.float32)
    return SparseTensor(coords, feats)


class TestSparseConv3d:
    def test_submanifold_preserves_coords(self):
        x = make_tensor()
        conv = SparseConv3d(4, 8, 3)
        y = conv(x, ExecutionContext())
        assert np.array_equal(y.coords, x.coords)
        assert y.num_channels == 8

    def test_strided_downsamples(self):
        x = make_tensor()
        conv = SparseConv3d(4, 8, kernel_size=2, stride=2)
        y = conv(x, ExecutionContext())
        assert y.stride == (2, 2, 2)
        assert y.num_points < x.num_points

    def test_pointwise_is_pure_gemm(self):
        x = make_tensor()
        conv = SparseConv3d(4, 8, kernel_size=1)
        ctx = ExecutionContext()
        y = conv(x, ctx)
        expected = x.feats.astype(np.float16).astype(np.float32) @ \
            conv.weight.data[0].astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(
            y.feats.astype(np.float32), expected, rtol=1e-2, atol=1e-2
        )
        assert len(ctx.trace.filter(LaunchKind.MAPPING)) == 0

    def test_map_cache_reused_across_layers(self):
        x = make_tensor()
        ctx = ExecutionContext()
        conv1 = SparseConv3d(4, 8, 3)
        conv2 = SparseConv3d(8, 8, 3)
        y = conv1(x, ctx)
        hash_launches_before = len(ctx.trace.filter_name("hash"))
        conv2(y, ctx)
        assert len(ctx.trace.filter_name("hash")) == hash_launches_before

    def test_transposed_requires_cached_map(self):
        x = make_tensor()
        up = SparseConv3d(4, 8, kernel_size=2, stride=2, transposed=True)
        coarse = SparseTensor(
            x.coords[x.coords[:, 1] % 2 == 0],
            x.feats[x.coords[:, 1] % 2 == 0], stride=2
        )
        with pytest.raises(MapError):
            up(coarse, ExecutionContext())

    def test_transposed_roundtrip_coords(self):
        x = make_tensor()
        ctx = ExecutionContext()
        down = SparseConv3d(4, 8, kernel_size=2, stride=2)
        up = SparseConv3d(8, 4, kernel_size=2, stride=2, transposed=True)
        y = down(x, ctx)
        z = up(y, ctx)
        assert np.array_equal(z.coords, x.coords)
        assert z.stride == (1, 1, 1)

    def test_bias_added(self):
        x = make_tensor()
        conv = SparseConv3d(4, 8, 1, bias=True)
        conv.bias.data[:] = 5.0
        y = conv(x, ExecutionContext())
        assert float(y.feats.mean()) > 1.0

    def test_channel_mismatch_raises(self):
        x = make_tensor(channels=4)
        conv = SparseConv3d(8, 8, 3)
        with pytest.raises(ConfigError):
            conv(x, ExecutionContext())

    def test_backward_requires_training_forward(self):
        conv = SparseConv3d(4, 8, 3)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 8)), ExecutionContext())

    def test_backward_gradient_check(self):
        # Finite-difference check of wgrad and dgrad through a tiny conv.
        x = make_tensor(n=30, extent=5)
        ctx = ExecutionContext(precision="fp32", training=True)
        conv = SparseConv3d(4, 3, 3)
        conv.train()
        y = conv(x, ctx)
        target = np.ones_like(y.feats)
        grad_out = (y.feats - target).astype(np.float32)  # d(0.5*mse)/dy
        grad_in = conv.backward(grad_out, ctx)

        def loss(weights):
            old = conv.weight.data.copy()
            conv.weight.data = weights
            out = conv(x, ExecutionContext(precision="fp32"))
            conv.weight.data = old
            return 0.5 * float(((out.feats - target) ** 2).sum())

        eps = 1e-3
        w = conv.weight.data
        for index in [(0, 0, 0), (13, 2, 1), (26, 3, 2)]:
            w_plus = w.copy(); w_plus[index] += eps
            w_minus = w.copy(); w_minus[index] -= eps
            numeric = (loss(w_plus) - loss(w_minus)) / (2 * eps)
            assert conv.weight.grad[index] == pytest.approx(numeric, rel=1e-2)
        # dgrad check against one feature element.
        def loss_feats(feats):
            out = conv(x.with_feats(feats), ExecutionContext(precision="fp32"))
            return 0.5 * float(((out.feats - target) ** 2).sum())

        f = x.feats
        for index in [(0, 0), (5, 2)]:
            f_plus = f.copy(); f_plus[index] += eps
            f_minus = f.copy(); f_minus[index] -= eps
            numeric = (loss_feats(f_plus) - loss_feats(f_minus)) / (2 * eps)
            assert grad_in[index] == pytest.approx(numeric, rel=5e-2, abs=2e-3)


class TestElementwiseLayers:
    def test_relu_clamps(self):
        x = make_tensor()
        y = ReLU()(x, ExecutionContext())
        assert float(y.feats.min()) >= 0.0

    def test_relu_backward_masks(self):
        x = make_tensor()
        relu = ReLU()
        relu.train()
        ctx = ExecutionContext(training=True)
        y = relu(x, ctx)
        grad = np.ones_like(y.feats)
        grad_in = relu.backward(grad, ctx)
        assert np.all((grad_in > 0) == (x.feats > 0))

    def test_batchnorm_normalizes_in_training(self):
        x = make_tensor(n=500)
        bn = BatchNorm(4)
        bn.train()
        y = bn(x, ExecutionContext(precision="fp32", training=True))
        assert abs(float(y.feats.mean())) < 1e-5
        assert float(y.feats.std()) == pytest.approx(1.0, abs=0.05)

    def test_batchnorm_uses_running_stats_in_eval(self):
        x = make_tensor(n=500)
        bn = BatchNorm(4)
        bn.train()
        ctx = ExecutionContext(precision="fp32", training=True)
        for _ in range(20):
            bn(x, ctx)
        bn.eval()
        y = bn(x, ExecutionContext(precision="fp32"))
        assert abs(float(y.feats.mean())) < 0.2

    def test_batchnorm_backward_shapes(self):
        x = make_tensor()
        bn = BatchNorm(4)
        bn.train()
        ctx = ExecutionContext(precision="fp32", training=True)
        y = bn(x, ctx)
        grad = bn.backward(np.ones_like(y.feats), ctx)
        assert grad.shape == x.feats.shape
        assert bn.gamma.grad is not None


class TestBlocksAndContainers:
    def test_residual_block_roundtrip(self):
        x = make_tensor()
        block = ResidualBlock(4, 16)
        block.train()
        ctx = ExecutionContext(training=True)
        y = block(x, ctx)
        assert y.num_channels == 16
        grad = block.backward(np.ones(y.feats.shape, dtype=np.float16), ctx)
        assert grad.shape == x.feats.shape

    def test_residual_identity_skip_when_channels_match(self):
        block = ResidualBlock(8, 8)
        assert block.projection is None

    def test_sequential_indexing(self):
        net = Sequential(ConvBlock(4, 8), ConvBlock(8, 8))
        assert len(net) == 2
        assert isinstance(net[0], ConvBlock)

    def test_module_parameter_discovery(self):
        net = Sequential(ConvBlock(4, 8, label="a"), ResidualBlock(8, 16))
        names = [n for n, _ in net.named_parameters()]
        assert any("weight" in n for n in names)
        assert net.num_parameters() > 0

    def test_train_eval_propagates(self):
        net = Sequential(ConvBlock(4, 8), ResidualBlock(8, 8))
        net.train()
        assert all(m.training for _, m in net.named_modules())
        net.eval()
        assert not any(m.training for _, m in net.named_modules())


class TestExecutionContext:
    def test_simulate_only_matches_numeric_trace_latency(self):
        x1, x2 = make_tensor(seed=5), make_tensor(seed=5)
        net1 = SparseConv3d(4, 8, 3, seed=9)
        net2 = SparseConv3d(4, 8, 3, seed=9)
        ctx_real = ExecutionContext(device="3090", precision="fp16")
        ctx_sim = ExecutionContext(
            device="3090", precision="fp16", simulate_only=True
        )
        net1(x1, ctx_real)
        net2(x2, ctx_sim)
        assert ctx_sim.latency_us() == pytest.approx(
            ctx_real.latency_us(), rel=1e-9
        )

    def test_group_policy_role_fallback(self):
        cfg = LayerConfig(dataflow=Dataflow.FETCH_ON_DEMAND)
        policy = GroupPolicy({("sig",): {Role.FORWARD: cfg}})
        assert policy.config(("sig",), Role.DGRAD) is cfg
        assert policy.config(("other",), Role.FORWARD).dataflow is (
            Dataflow.IMPLICIT_GEMM
        )

    def test_map_cost_scale(self):
        x1, x2 = make_tensor(seed=7), make_tensor(seed=7)
        conv1 = SparseConv3d(4, 8, 3)
        conv2 = SparseConv3d(4, 8, 3)
        ctx1 = ExecutionContext(simulate_only=True)
        ctx2 = ExecutionContext(simulate_only=True, map_cost_scale=3.0)
        conv1(x1, ctx1)
        conv2(x2, ctx2)
        map1 = sum(v for k, v in ctx1.breakdown_us().items() if k == "mapping")
        map2 = sum(v for k, v in ctx2.breakdown_us().items() if k == "mapping")
        assert map2 > map1
