"""Pass-soundness harness for the ``repro.opt`` rewrite pipeline.

Every pass is exercised over the dataflow x precision grid and must

(a) leave :func:`repro.analyze.depgraph.check_dependences` clean on a
    clean input (rewrites never introduce hazards),
(b) satisfy its declared conservation contract — counters outside
    ``may_reduce`` unchanged, counters inside it never increasing,
(c) preserve execution semantics: the numerics the trace models match
    the dense reference within the existing differential tolerances
    (passes rewrite the latency model, never the math).

Negative tests prove the sandwich actually bites: contract-breaking
passes raise :class:`PassSoundnessError` instead of silently corrupting
the program.
"""

import copy

import numpy as np
import pytest

from repro.analyze.depgraph import check_dependences
from repro.analyze.tracecheck import check_trace
from repro.gpusim.trace import (
    BufferAccess,
    KernelLaunch,
    KernelTrace,
    LaunchKind,
    scope_buffers,
    ws,
)
from repro.kernels import run_dataflow
from repro.kernels.base import KernelSchedule
from repro.kernels.registry import DATAFLOWS, trace_dataflow
from repro.opt import (
    DEFAULT_PIPELINE,
    PASSES,
    EliminateDeadLaunches,
    HoistMapBuilds,
    LaunchProgram,
    OptError,
    Pass,
    PassPipeline,
    PassSoundnessError,
    PlanWorkspaceReuse,
    optimize_trace,
)
from repro.precision import Precision
from tests.broken_traces import healthy_trace, leaked_staging_trace
from tests.test_dataflow_differential import (
    TOLERANCES,
    build_case,
    dense_reference,
)

#: Dynamic-shape schedule: declares hoistable address arithmetic, so the
#: hoist-invariants pass has something to do on every dataflow.
NAIVE = KernelSchedule(hoist_invariants=False)

#: Conservation slack (matches the pipeline's internal epsilon).
EPS = 0.5

COUNTERS = (
    "launches",
    "flops",
    "dram_read_bytes",
    "dram_write_bytes",
    "atomic_write_bytes",
    "scalar_ops",
    "peak_workspace_bytes",
)


def assert_conserved(result):
    """Explicitly re-check one PassResult against its pass's contract."""
    may_reduce = PASSES[result.name].may_reduce
    for field in COUNTERS:
        before = float(getattr(result.before, field))
        after = float(getattr(result.after, field))
        if field in may_reduce:
            assert after <= before + EPS, (
                f"{result.name} increased reducible {field}: "
                f"{before} -> {after}"
            )
        else:
            assert abs(after - before) <= EPS, (
                f"{result.name} changed conserved {field}: "
                f"{before} -> {after}"
            )


class TestPipelineGrid:
    """Default pipeline x dataflow x precision: soundness + numerics."""

    @pytest.mark.parametrize("precision", list(TOLERANCES))
    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_pipeline_sound_and_numerics_match(self, dataflow, precision):
        coords, feats, weights, kmap = build_case(
            3, 1, 1, seed=sum(map(ord, dataflow)) % 997
        )
        out, trace = run_dataflow(
            dataflow, feats, weights, kmap,
            schedule=NAIVE, precision=precision,
        )
        assert check_dependences(list(trace)) == []
        program, results = optimize_trace(trace)
        # (a) still hazard-free after the full pipeline
        assert check_dependences(program.launches) == []
        assert check_trace(program.to_trace()) == []
        # (b) every pass honored its conservation contract
        for result in results:
            assert_conserved(result)
        # (c) the modeled execution's numerics are untouched by rewrites
        expected = dense_reference(coords, feats, weights, kmap)
        np.testing.assert_allclose(
            out.astype(np.float64), expected, **TOLERANCES[precision]
        )

    @pytest.mark.parametrize("pass_name", sorted(PASSES))
    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_each_pass_alone_is_sound(self, dataflow, pass_name):
        _, _, _, kmap = build_case(3, 1, 1, seed=11)
        trace = trace_dataflow(
            dataflow, kmap, c_in=5, c_out=6,
            schedule=NAIVE, precision=Precision.FP16,
        )
        program, results = optimize_trace(trace, passes=[pass_name])
        assert check_dependences(program.launches) == []
        assert_conserved(results[0])


class TestFusion:
    def test_fuses_gather_gemm_scatter_chains(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=3)
        trace = trace_dataflow("gather_scatter", kmap, c_in=8, c_out=16)
        program, results = optimize_trace(trace, passes=["fuse"])
        (result,) = results
        assert result.changed
        # Each per-offset gather/gemm/scatter triple collapses to one
        # launch: 2 launches removed per populated offset.
        offsets = sum(
            1 for launch in trace if launch.name.startswith("gemm/")
        )
        assert result.launches_removed == 2 * offsets
        # Staging buffers leave DRAM and the workspace plan.
        assert result.after.dram_read_bytes < result.before.dram_read_bytes
        assert (
            result.after.peak_workspace_bytes
            < result.before.peak_workspace_bytes
        )
        # Math is conserved: fusion moves data, not flops.
        assert result.after.flops == pytest.approx(result.before.flops)
        assert result.after.scalar_ops == pytest.approx(
            result.before.scalar_ops
        )
        # The fused names stay legible to the scatter-race checker.
        assert check_trace(program.to_trace()) == []

    def test_fusion_is_idempotent(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=4)
        trace = trace_dataflow("gather_scatter", kmap, c_in=8, c_out=8)
        program, _ = optimize_trace(trace, passes=["fuse"])
        once = [launch.name for launch in program.launches]
        program2, results = optimize_trace(
            program.to_trace(), passes=["fuse"]
        )
        assert not results[0].changed
        assert [launch.name for launch in program2.launches] == once

    def test_external_consumer_blocks_fusion(self):
        # A second reader of a staging buffer outside the group must keep
        # the buffer in DRAM: the run may not fuse.
        _, _, _, kmap = build_case(3, 1, 1, seed=5)
        trace = list(trace_dataflow("gather_scatter", kmap, c_in=4, c_out=4))
        staged = next(
            access.buffer
            for launch in trace
            for access in launch.writes
            if launch.name.startswith("gather/") and access.workspace
        )
        spy = KernelLaunch(
            name="debug/spy",
            kind=LaunchKind.MEMORY,
            dram_read_bytes=8.0,
            reads=(BufferAccess(staged, 8.0),),
        )
        trace.append(spy)
        program, _ = optimize_trace(KernelTrace(trace), passes=["fuse"])
        names = [launch.name for launch in program.launches]
        # The triple whose staging buffer the spy reads stayed unfused...
        assert any(name.startswith("gather/") for name in names)
        # ...while the other offsets fused normally.
        assert any(name.startswith("gather_gemm_scatter/") for name in names)


class TestHoistInvariants:
    def test_matches_hand_hoisted_schedule_exactly(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=7)
        naive = trace_dataflow(
            "implicit_gemm", kmap, c_in=8, c_out=16, schedule=NAIVE
        )
        hoisted_by_hand = trace_dataflow(
            "implicit_gemm", kmap, c_in=8, c_out=16,
            schedule=KernelSchedule(hoist_invariants=True),
        )
        program, results = optimize_trace(naive, passes=["hoist-invariants"])
        assert results[0].changed
        got = program.summary()
        want = hoisted_by_hand.summary()
        assert got.scalar_ops == pytest.approx(want.scalar_ops)
        assert got.flops == pytest.approx(want.flops)

    def test_noop_on_fixed_shape(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=8)
        trace = trace_dataflow(
            "implicit_gemm", kmap, c_in=8, c_out=16,
            schedule=KernelSchedule(fixed_shape=True),
        )
        _, results = optimize_trace(trace, passes=["hoist-invariants"])
        assert not results[0].changed


def _second_layer(layer):
    """Copy a layer trace, renaming external *outputs* only — the shape of
    a second layer that shares the first one's map signature and inputs
    but produces its own features."""
    copied = []
    for launch in layer:
        clone = copy.deepcopy(launch)
        if clone.kind is not LaunchKind.MAPPING:
            clone.writes = tuple(
                access
                if access.workspace
                else BufferAccess(
                    access.buffer + ".2", access.nbytes, access.atomic
                )
                for access in clone.writes
            )
        copied.append(clone)
    return copied


class TestHoistMapBuilds:
    def test_drops_identical_map_rebuild(self):
        # Two layers sharing a map signature in one cache scope: the
        # second layer's mapping launches recompute byte-identical maps.
        _, _, _, kmap = build_case(3, 1, 1, seed=9)
        layer = trace_dataflow("implicit_gemm", kmap, c_in=8, c_out=8)
        doubled = KernelTrace([*layer, *_second_layer(layer)])
        mapping = sum(
            1 for launch in layer if launch.kind is LaunchKind.MAPPING
        )
        assert mapping > 0
        program, results = optimize_trace(doubled, passes=["hoist-maps"])
        assert results[0].launches_removed == mapping
        assert check_dependences(program.launches) == []

    def test_intervening_write_blocks_reuse(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=10)
        layer = list(trace_dataflow("implicit_gemm", kmap, c_in=8, c_out=8))
        map_written = next(
            access.buffer
            for launch in layer
            if launch.kind is LaunchKind.MAPPING
            for access in launch.writes
        )
        clobber = KernelLaunch(
            name="debug/clobber",
            kind=LaunchKind.MEMORY,
            dram_write_bytes=8.0,
            writes=(BufferAccess(map_written, 8.0),),
        )
        doubled = KernelTrace([*layer, clobber, *_second_layer(layer)])
        program, _ = optimize_trace(doubled, passes=["hoist-maps"])
        # The clobbered build must be recomputed: the mapping launch whose
        # buffer was overwritten survives in both layers.
        rebuilt = [
            launch
            for launch in program.launches
            if launch.kind is LaunchKind.MAPPING
            and any(a.buffer == map_written for a in launch.writes)
        ]
        assert len(rebuilt) == 2

    def test_noop_without_mapping_launches(self):
        # Gather-scatter traces carry no MAPPING launches: nothing to CSE.
        trace = healthy_trace(seed=2)
        _, results = optimize_trace(trace, passes=["hoist-maps"])
        assert not results[0].changed


class TestDeadLaunchElimination:
    def test_repairs_leaked_staging(self):
        broken = leaked_staging_trace()
        # The leak is visible before...
        assert any(
            v.invariant == "workspace-lifetime"
            for v in check_dependences(list(broken))
        )
        program, results = optimize_trace(broken, passes=["dle"])
        assert results[0].changed
        # ...and gone after: the orphan GEMM and its gather are removed.
        assert check_dependences(program.launches) == []
        assert results[0].launches_removed == 2

    def test_keeps_observable_writes(self):
        trace = healthy_trace(seed=1)
        _, results = optimize_trace(trace, passes=["dle"])
        assert not results[0].changed


class TestPlanWorkspace:
    def test_shrinks_over_declared_launch(self):
        producer = KernelLaunch(
            name="debug/producer",
            kind=LaunchKind.MEMORY,
            dram_write_bytes=100.0,
            workspace_bytes=10_000.0,
            writes=(ws("stage", 100.0),),
        )
        consumer = KernelLaunch(
            name="debug/consumer",
            kind=LaunchKind.MEMORY,
            dram_read_bytes=100.0,
            workspace_bytes=10_000.0,
            reads=(ws("stage", 100.0),),
        )
        program, results = optimize_trace(
            KernelTrace([producer, consumer]), passes=["plan-workspace"]
        )
        assert results[0].changed
        for launch in program.launches:
            assert launch.workspace_bytes == pytest.approx(100.0)
        assert results[0].workspace_saved_bytes == pytest.approx(9_900.0)

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_never_increases_peak(self, dataflow):
        _, _, _, kmap = build_case(2, 2, 1, seed=13)
        trace = trace_dataflow(dataflow, kmap, c_in=8, c_out=8)
        program, results = optimize_trace(trace, passes=["plan-workspace"])
        assert (
            results[0].after.peak_workspace_bytes
            <= results[0].before.peak_workspace_bytes + EPS
        )
        # Tightened plans still satisfy the lifetime accounting check.
        assert check_dependences(program.launches) == []

    def test_shrinks_fused_gather_scatter_staging(self):
        # The generator's fused-gs GEMMs over-declare workspace (pair
        # lists + gather buffer + staged output, summed); the planner
        # provably tightens them.
        _, _, _, kmap = build_case(3, 1, 1, seed=14)
        trace = trace_dataflow("gather_scatter_fused", kmap, c_in=8, c_out=16)
        # Snapshot first: passes rewrite launches in place.
        declared_before = sum(launch.workspace_bytes for launch in trace)
        program, results = optimize_trace(trace, passes=["plan-workspace"])
        assert results[0].changed
        # Early GEMM groups run before most staged outputs exist: their
        # declarations tighten, so total declared workspace shrinks even
        # though the peak (set by the last, fully-live group) stands.
        declared_after = sum(
            launch.workspace_bytes for launch in program.launches
        )
        assert declared_after < declared_before
        assert results[0].workspace_saved_bytes >= 0


class TestAcceptance:
    def test_hoisting_plus_fusion_reduce_launches_and_workspace(self):
        # ISSUE acceptance: at least one workload where the pipeline cuts
        # both total launches and peak_workspace_bytes.  A two-layer
        # network traced the way conv layers do (scoped buffers, features
        # chained) exercises fusion (gs layer) and invariant hoisting
        # (naive-dynamic implicit-gemm layer) in one program.
        _, _, _, kmap = build_case(3, 1, 1, seed=15)
        gs = scope_buffers(
            trace_dataflow("gather_scatter", kmap, c_in=64, c_out=64),
            "l0/fwd",
        )
        ig = scope_buffers(
            trace_dataflow(
                "implicit_gemm", kmap, c_in=64, c_out=16, schedule=NAIVE
            ),
            "l1/fwd",
            renames={"ext:feats_in": "ext:l0/fwd:feats_out"},
        )
        trace = KernelTrace([*gs, *ig])
        before = trace.summary()  # snapshot: passes mutate launches in place
        program, results = optimize_trace(trace)
        after = program.summary()
        assert after.launches < before.launches
        assert after.peak_workspace_bytes < before.peak_workspace_bytes
        assert after.scalar_ops < before.scalar_ops  # hoisting fired too
        assert check_dependences(program.launches) == []
        assert [r.name for r in results] == list(DEFAULT_PIPELINE)


class _CounterfeitFlops(Pass):
    """Deliberately broken: inflates a conserved counter."""

    name = "counterfeit-flops"
    may_reduce = frozenset()

    def run(self, program):
        program.entries[0].launch.flops += 1e6
        program.replace(program.entries)
        return True


class _DropScatter(Pass):
    """Deliberately broken: orphans a staging buffer (introduces a leak)."""

    name = "drop-scatter"
    may_reduce = frozenset(COUNTERS)

    def run(self, program):
        keep = [
            entry
            for entry in program.entries
            if not entry.launch.name.startswith("scatter/")
        ]
        program.replace(keep)
        return True


class TestSoundnessSandwich:
    def test_unknown_pass_name_rejected(self):
        with pytest.raises(OptError, match="unknown pass"):
            PassPipeline(["fuse", "no-such-pass"])

    def test_conservation_violation_raises(self, monkeypatch):
        monkeypatch.setitem(PASSES, _CounterfeitFlops.name, _CounterfeitFlops)
        program = LaunchProgram.from_trace(healthy_trace())
        with pytest.raises(PassSoundnessError, match="conserved counter"):
            PassPipeline([_CounterfeitFlops.name]).run(program)

    def test_introduced_violation_raises(self, monkeypatch):
        monkeypatch.setitem(PASSES, _DropScatter.name, _DropScatter)
        program = LaunchProgram.from_trace(healthy_trace())
        with pytest.raises(PassSoundnessError, match="introduced"):
            PassPipeline([_DropScatter.name]).run(program)

    def test_broken_input_stays_diagnosable(self):
        # An already-broken trace may flow through: passes must not
        # *introduce* violations, but pre-existing ones are tolerated
        # (and dle may even repair them).
        program, _ = optimize_trace(leaked_staging_trace(), passes=["fuse"])
        assert len(program) > 0


class TestStableIds:
    def test_ids_survive_rewrites(self):
        trace = healthy_trace()
        program = LaunchProgram.from_trace(trace)
        original = set(program.ids())
        PassPipeline(["fuse"]).run(program)
        after = program.ids()
        assert len(after) == len(set(after))
        # Fused launches got fresh ids; survivors kept theirs.
        assert set(after) - original, "fusion should mint fresh ids"
        assert max(after) >= max(original)

    def test_duplicate_ids_rejected(self):
        program = LaunchProgram.from_trace(healthy_trace())
        entries = list(program.entries)
        entries[1] = type(entries[1])(entries[0].id, entries[1].launch)
        with pytest.raises(ValueError, match="duplicate"):
            program.replace(entries)
