"""Property tests for the multi-stream list scheduler (``repro.opt.schedule``).

A seeded random-DAG generator (mirroring ``tests/broken_traces.py``'s
fixture style) drives the schedule-validity properties:

* no hazard edge crosses streams out of order — for every dependence
  edge the source finishes before the destination starts;
* launches sharing a stream never overlap;
* ``best_schedule`` is monotone non-increasing in the stream budget K;
* ``critical_path <= scheduled <= serialized`` for K in {1, 2, 4, 8};
* K = 1 reproduces the serialized estimate *bitwise*.

The built-in workload sweep locks the ISSUE acceptance criterion: on
every bundled workload, a K >= 2 schedule is strictly faster than
serialized execution.
"""

import random

import pytest

from repro.analyze.depgraph import DependenceGraph
from repro.data.datasets import make_sample
from repro.gpusim.engine import estimate_trace_us
from repro.gpusim.trace import BufferAccess, KernelLaunch, KernelTrace, LaunchKind
from repro.hw import get_device
from repro.models.registry import WORKLOADS
from repro.nn.context import ExecutionContext
from repro.opt.schedule import (
    best_schedule,
    list_schedule,
    scheduled_trace_us,
)
from repro.precision import Precision

A100 = get_device("a100")
FP16 = Precision.FP16
STREAM_COUNTS = (1, 2, 4, 8)

#: Relative slack for float comparisons over summed launch times.
REL = 1e-9


def random_dag_trace(seed: int, n: int = 40) -> KernelTrace:
    """A seeded random launch DAG with realistic hazard structure.

    Launch ``i`` writes its own staging buffer and reads a random subset
    of earlier launches' buffers (RAW edges of random shape); a final
    sink consumes every buffer so the trace stays leak-free under the
    depgraph's workspace-lifetime rule.
    """
    rng = random.Random(seed)
    launches = []
    for i in range(n):
        nbytes = float(rng.randrange(1, 64) * 1024)
        reads = []
        read_bytes = 0.0
        for j in rng.sample(range(i), k=min(i, rng.randrange(0, 3))):
            prior = float(rng.randrange(1, 64) * 256)
            reads.append(BufferAccess(f"ws:stage.{j}", prior))
            read_bytes += prior
        writes = (BufferAccess(f"ws:stage.{i}", nbytes),)
        launches.append(
            KernelLaunch(
                name=f"random/node{i}",
                kind=rng.choice(list(LaunchKind)),
                flops=float(rng.randrange(1, 2000)) * 1e4,
                dram_read_bytes=read_bytes,
                dram_write_bytes=nbytes,
                scalar_ops=float(rng.randrange(0, 500)),
                workspace_bytes=nbytes + read_bytes,
                ctas=rng.randrange(1, 64),
                reads=tuple(reads),
                writes=writes,
            )
        )
    sink_reads = tuple(
        BufferAccess(f"ws:stage.{i}", 128.0) for i in range(n)
    )
    launches.append(
        KernelLaunch(
            name="random/sink",
            kind=LaunchKind.REDUCTION,
            dram_read_bytes=128.0 * n,
            dram_write_bytes=1024.0,
            workspace_bytes=128.0 * n,
            reads=sink_reads,
            writes=(BufferAccess("ext:out", 1024.0),),
        )
    )
    return KernelTrace(launches)


SEEDS = tuple(range(6))


class TestScheduleValidity:
    @pytest.mark.parametrize("streams", STREAM_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_hazard_edge_violated(self, seed, streams):
        trace = random_dag_trace(seed)
        graph = DependenceGraph.build(trace)
        schedule = list_schedule(trace, A100, FP16, streams, graph)
        by_index = {a.index: a for a in schedule.assignments}
        for edge in graph.edges:
            src, dst = by_index[edge.src], by_index[edge.dst]
            assert src.end_us <= dst.start_us + REL * max(1.0, src.end_us), (
                f"{edge.kind} edge {edge.src}->{edge.dst} on "
                f"{edge.buffer} crosses streams out of order"
            )

    @pytest.mark.parametrize("streams", STREAM_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_streams_never_overlap(self, seed, streams):
        trace = random_dag_trace(seed)
        schedule = list_schedule(trace, A100, FP16, streams)
        per_stream = {}
        for a in schedule.assignments:
            per_stream.setdefault(a.stream, []).append(a)
        for assigned in per_stream.values():
            assigned.sort(key=lambda a: a.start_us)
            for prev, cur in zip(assigned, assigned[1:]):
                assert prev.end_us <= cur.start_us + REL * max(
                    1.0, prev.end_us
                )
        assert schedule.used_streams <= streams

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_launch_scheduled_once(self, seed):
        trace = random_dag_trace(seed)
        schedule = list_schedule(trace, A100, FP16, 4)
        assert sorted(a.index for a in schedule.assignments) == list(
            range(len(trace))
        )


class TestLatencyBounds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_monotone_in_stream_budget(self, seed):
        trace = random_dag_trace(seed)
        graph = DependenceGraph.build(trace)
        makespans = [
            scheduled_trace_us(trace, A100, FP16, k, graph)
            for k in STREAM_COUNTS
        ]
        for wider, narrower in zip(makespans[1:], makespans):
            assert wider <= narrower * (1 + REL)

    @pytest.mark.parametrize("streams", STREAM_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_within_critical_path_and_serialized(self, seed, streams):
        trace = random_dag_trace(seed)
        schedule = best_schedule(trace, A100, FP16, streams)
        assert (
            schedule.critical_path_us * (1 - REL)
            <= schedule.makespan_us
            <= schedule.serialized_us * (1 + REL)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_stream_is_serialized_bitwise(self, seed):
        trace = random_dag_trace(seed)
        schedule = list_schedule(trace, A100, FP16, 1)
        # Exact equality, not approx: same launches, same left-to-right
        # summation order.
        assert schedule.makespan_us == schedule.serialized_us
        assert schedule.makespan_us == estimate_trace_us(trace, A100, FP16)

    def test_invalid_stream_count_rejected(self):
        with pytest.raises(ValueError, match="streams"):
            list_schedule(random_dag_trace(0), A100, FP16, 0)
        with pytest.raises(ValueError, match="streams"):
            estimate_trace_us(random_dag_trace(0), A100, FP16, streams=0)


class TestBarrierSemantics:
    def test_unannotated_trace_schedules_serialized(self):
        # No read/write annotations -> no provable overlap: the model
        # must claim nothing.
        launches = [
            KernelLaunch(
                name=f"opaque/{i}",
                kind=LaunchKind.MEMORY,
                dram_read_bytes=4096.0,
                dram_write_bytes=4096.0,
            )
            for i in range(10)
        ]
        trace = KernelTrace(launches)
        for k in STREAM_COUNTS:
            schedule = list_schedule(trace, A100, FP16, k)
            assert schedule.makespan_us == schedule.serialized_us

    def test_barrier_fences_annotated_work(self):
        # annotated | barrier | annotated: nothing after the barrier may
        # start before it ends.
        trace = list(random_dag_trace(3, n=8))
        barrier = KernelLaunch(
            name="opaque/barrier",
            kind=LaunchKind.MEMORY,
            dram_write_bytes=1.0,
        )
        fenced = KernelTrace([*trace[:-1], barrier, trace[-1]])
        schedule = list_schedule(fenced, A100, FP16, 4)
        b = next(a for a in schedule.assignments if a.name == "opaque/barrier")
        before = [a for a in schedule.assignments if a.index < b.index]
        after = [a for a in schedule.assignments if a.index > b.index]
        assert all(a.end_us <= b.start_us + REL for a in before)
        assert all(a.start_us >= b.end_us - REL for a in after)


class TestBuiltinWorkloads:
    """ISSUE acceptance: K >= 2 beats serialized on every workload."""

    @pytest.mark.parametrize("workload_id", sorted(WORKLOADS))
    def test_two_streams_strictly_beat_serialized(self, workload_id):
        workload = WORKLOADS[workload_id]
        model = workload.build_model()
        model.eval()
        ctx = ExecutionContext(device=A100, precision=FP16, simulate_only=True)
        sample = make_sample(
            workload.dataset, frames=workload.frames, seed=0, scale=0.1
        )
        model(sample, ctx)
        serialized = estimate_trace_us(ctx.trace, A100, FP16)
        scheduled = estimate_trace_us(ctx.trace, A100, FP16, streams=2)
        assert scheduled < serialized
        graph = DependenceGraph.build(ctx.trace)
        _, span = graph.critical_path(A100, FP16)
        assert span <= scheduled * (1 + REL)

    def test_context_gpu_streams_lowers_latency(self):
        workload = WORKLOADS["SK-M-0.5"]
        sample = make_sample(workload.dataset, frames=1, seed=0, scale=0.1)
        latencies = {}
        for streams in (1, 4):
            model = workload.build_model()
            model.eval()
            ctx = ExecutionContext(
                device=A100, precision=FP16,
                simulate_only=True, gpu_streams=streams,
            )
            model(sample, ctx)
            latencies[streams] = ctx.latency_us()
        assert latencies[4] < latencies[1]

    def test_context_rejects_bad_stream_count(self):
        with pytest.raises(ValueError, match="gpu_streams"):
            ExecutionContext(gpu_streams=0)
