"""Tests for the optimizer module."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_grad(param: Parameter) -> None:
    """Gradient of f(w) = 0.5 * ||w||^2 is w."""
    param.grad = param.data.copy()


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([2.0, -4.0]))
        opt = SGD([p], lr=0.5)
        quadratic_grad(p)
        opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        opt = SGD([p], lr=0.3)
        for _ in range(50):
            quadratic_grad(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-4

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([10.0]))
        momentum = Parameter(np.array([10.0]))
        opt_plain = SGD([plain], lr=0.05)
        opt_momentum = SGD([momentum], lr=0.05, momentum=0.9)
        for _ in range(20):
            quadratic_grad(plain)
            opt_plain.step()
            quadratic_grad(momentum)
            opt_momentum.step()
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.9)

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)
        with pytest.raises(ConfigError):
            SGD([p], lr=-1.0)
        with pytest.raises(ConfigError):
            SGD([p], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            quadratic_grad(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_bias_correction_first_step(self):
        # First Adam step magnitude is ~lr regardless of gradient scale.
        p = Parameter(np.array([100.0]))
        opt = Adam([p], lr=0.1)
        quadratic_grad(p)
        opt.step()
        assert p.data[0] == pytest.approx(100.0 - 0.1, abs=1e-4)

    def test_validation(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ConfigError):
            Adam([p], lr=0.0)
        with pytest.raises(ConfigError):
            Adam([p], betas=(1.2, 0.9))

    def test_trains_a_real_layer(self):
        # End to end: a pointwise conv learns an identity-ish mapping.
        from repro.nn import ExecutionContext, SparseConv3d
        from repro.sparse import SparseTensor

        rng = np.random.default_rng(0)
        coords = np.concatenate(
            [np.zeros((64, 1), np.int32),
             np.arange(64, dtype=np.int32).reshape(-1, 1).repeat(3, axis=1)],
            axis=1,
        )
        x = SparseTensor(coords, rng.standard_normal((64, 4)).astype(np.float32))
        target = x.feats @ np.eye(4, dtype=np.float32) * 2.0

        conv = SparseConv3d(4, 4, 1)
        conv.train()
        opt = Adam(conv.parameters(), lr=0.05)
        losses = []
        for _ in range(60):
            ctx = ExecutionContext(precision="fp32", training=True)
            out = conv(x, ctx)
            grad = (out.feats - target) / len(target)
            losses.append(float((grad ** 2).sum()))
            conv.backward(grad, ctx)
            opt.step()
            opt.zero_grad()
        assert losses[-1] < 0.05 * losses[0]
