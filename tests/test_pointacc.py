"""Tests for the PointAcc systolic-array model (Table 2 substrate)."""

import pytest

from repro.hw import POINTACC, POINTACC_L, PointAccSpec


class TestPointAccSpec:
    def test_peak_performance_matches_table2(self):
        # Table 2: PointAcc 4096 MACs -> 4 TMACS; PointAcc-L 16384 -> 16.
        assert POINTACC.macs == 4096
        assert POINTACC.peak_tmacs == pytest.approx(4.0, rel=0.05)
        assert POINTACC_L.macs == 16384
        assert POINTACC_L.peak_tmacs == pytest.approx(16.0, rel=0.05)

    def test_gemm_cycles_scale_with_work(self):
        small = POINTACC_L.gemm_cycles(1000, 64, 64)
        big = POINTACC_L.gemm_cycles(2000, 64, 64)
        assert big > 1.5 * small

    def test_gemm_cycles_tile_quantization(self):
        # K or N below the array dimension wastes the array.
        narrow = POINTACC_L.gemm_cycles(1000, 16, 16)
        wide = POINTACC_L.gemm_cycles(1000, 128, 128)
        # Wide does 64x the MACs in only ~1x the cycles (IC-OC parallelism).
        assert wide < 2 * narrow

    def test_zero_work_is_free(self):
        assert POINTACC_L.gemm_cycles(0, 64, 64) == 0.0

    def test_larger_array_faster_on_big_layers(self):
        layer = dict(
            map_sizes=[50_000] * 27, c_in=128, c_out=128,
            num_inputs=100_000, num_outputs=100_000,
        )
        assert POINTACC_L.layer_latency_ms(**layer) < POINTACC.layer_latency_ms(
            **layer
        )

    def test_mapping_cost_skipped_on_reuse(self):
        layer = dict(
            map_sizes=[10_000] * 27, c_in=64, c_out=64,
            num_inputs=50_000, num_outputs=50_000,
        )
        fresh = POINTACC_L.layer_latency_ms(**layer, build_map=True)
        reused = POINTACC_L.layer_latency_ms(**layer, build_map=False)
        assert fresh > reused

    def test_network_latency_sums_layers(self):
        layer = dict(
            map_sizes=[1000] * 27, c_in=32, c_out=32,
            num_inputs=5000, num_outputs=5000,
        )
        one = POINTACC_L.network_latency_ms([layer])
        three = POINTACC_L.network_latency_ms([layer] * 3)
        assert three == pytest.approx(3 * one)
