"""Property-based invariants of the sparse primitives.

These tests generate randomized inputs with seeded :class:`random.Random`
instances (no extra dependencies) and check the algebraic properties the
rest of the stack silently relies on: kernel-map symmetry and identity
structure, hash-table round trips, bitmask sort stability, and quantizer
idempotence.  Each property runs across a spread of seeds and sizes, so a
regression in any primitive trips dozens of independently generated cases.
"""

import random

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    CoordinateHashMap,
    KernelMap,
    build_kernel_map,
    pack_coords,
    sparse_quantize,
    unique_coords,
    unpack_coords,
)
from repro.sparse.bitmask import (
    MaskReordering,
    compute_bitmasks,
    sort_bitmasks,
    split_offsets,
    warp_mac_slots,
)
from repro.sparse.kernel_offsets import identity_offset_index, kernel_volume

SEEDS = list(range(8))


def random_coords(rng, count, span=24, ndim=3, batch=0):
    """Unique int32 coordinates drawn from a ``span``-wide grid."""
    cells = set()
    while len(cells) < count:
        cells.add(tuple(rng.randrange(-span, span) for _ in range(ndim)))
    rows = [(batch,) + cell for cell in sorted(cells)]
    rng.shuffle(rows)
    return np.asarray(rows, dtype=np.int32)


def pairs_as_set(kmap):
    """The kernel map as a set of ``(offset, input, output)`` triples."""
    return {
        (k, int(i), int(o))
        for k, (in_idx, out_idx) in enumerate(kmap.pairs())
        for i, o in zip(in_idx, out_idx)
    }


class TestKernelMapInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_submanifold_outputs_are_inputs(self, seed):
        rng = random.Random(seed)
        coords = random_coords(rng, rng.randrange(8, 64))
        kmap = build_kernel_map(coords, kernel_size=3, stride=1)
        np.testing.assert_array_equal(kmap.out_coords, coords)
        # The centre offset maps every output to itself.
        centre = identity_offset_index(3, ndim=3)
        np.testing.assert_array_equal(
            kmap.nbmap[:, centre], np.arange(len(coords))
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kernel_size,stride", [(3, 1), (2, 2), (3, 2)])
    def test_nbmap_indices_in_range(self, seed, kernel_size, stride):
        rng = random.Random(100 * seed + kernel_size)
        coords = random_coords(rng, rng.randrange(8, 48))
        kmap = build_kernel_map(coords, kernel_size, stride=stride)
        assert kmap.nbmap.shape == (
            kmap.num_outputs, kernel_volume(kernel_size, 3)
        )
        assert kmap.nbmap.min() >= -1
        assert kmap.nbmap.max() < kmap.num_inputs
        assert kmap.total_pairs == int((kmap.nbmap >= 0).sum())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_strided_outputs_live_on_coarse_grid(self, seed):
        rng = random.Random(seed + 31)
        coords = random_coords(rng, rng.randrange(8, 48))
        kmap = build_kernel_map(coords, kernel_size=2, stride=2)
        spatial = kmap.out_coords[:, 1:]
        assert np.all(spatial % 2 == 0)
        # Every output cell is occupied by at least one input point.
        floored = coords.copy()
        floored[:, 1:] = (coords[:, 1:] // 2) * 2
        occupied = {tuple(row) for row in floored.tolist()}
        for row in kmap.out_coords.tolist():
            assert tuple(row) in occupied

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transpose_swaps_pairs_exactly(self, seed):
        rng = random.Random(seed + 57)
        coords = random_coords(rng, rng.randrange(8, 48))
        kmap = build_kernel_map(coords, kernel_size=2, stride=2)
        transposed = kmap.transposed()
        assert transposed.num_inputs == kmap.num_outputs
        assert transposed.num_outputs == kmap.num_inputs
        assert transposed.total_pairs == kmap.total_pairs
        swapped = {(k, o, i) for (k, i, o) in pairs_as_set(kmap)}
        assert pairs_as_set(transposed) == swapped

    @pytest.mark.parametrize("seed", SEEDS)
    def test_double_transpose_is_identity(self, seed):
        rng = random.Random(seed + 83)
        coords = random_coords(rng, rng.randrange(8, 48))
        kmap = build_kernel_map(coords, kernel_size=3, stride=2)
        back = kmap.transposed().transposed()
        assert isinstance(back, KernelMap)
        np.testing.assert_array_equal(back.nbmap, kmap.nbmap)
        np.testing.assert_array_equal(back.offsets, kmap.offsets)
        np.testing.assert_array_equal(back.out_coords, kmap.out_coords)
        assert back.key == kmap.key

    @pytest.mark.parametrize("seed", SEEDS)
    def test_neighbour_relation_is_mirror_symmetric(self, seed):
        # For a submanifold map: q is p's neighbour at offset d exactly
        # when p is q's neighbour at offset -d.
        rng = random.Random(seed + 101)
        coords = random_coords(rng, rng.randrange(8, 40))
        kmap = build_kernel_map(coords, kernel_size=3, stride=1)
        offsets = [tuple(o) for o in kmap.offsets.tolist()]
        mirror = {k: offsets.index(tuple(-c for c in o))
                  for k, o in enumerate(offsets)}
        triples = pairs_as_set(kmap)
        assert {(mirror[k], o, i) for (k, i, o) in triples} == triples


class TestHashMapRoundTrips:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_inserted_keys_query_back_their_rows(self, seed):
        rng = random.Random(seed + 7)
        coords = random_coords(rng, rng.randrange(4, 128), span=200)
        table = CoordinateHashMap(pack_coords(coords))
        assert len(table) == len(coords)
        values = table.query(pack_coords(coords))
        np.testing.assert_array_equal(values, np.arange(len(coords)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_query_respects_permutation(self, seed):
        rng = random.Random(seed + 13)
        coords = random_coords(rng, rng.randrange(4, 96), span=200)
        table = CoordinateHashMap(pack_coords(coords))
        perm = list(range(len(coords)))
        rng.shuffle(perm)
        values = table.query(pack_coords(coords[perm]))
        np.testing.assert_array_equal(values, np.asarray(perm))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_missing_keys_return_minus_one(self, seed):
        rng = random.Random(seed + 19)
        inside = random_coords(rng, 32, span=20)
        outside = random_coords(rng, 32, span=20, batch=1)  # disjoint batch
        table = CoordinateHashMap(pack_coords(inside))
        np.testing.assert_array_equal(
            table.query(pack_coords(outside)), np.full(32, -1)
        )
        mixed = np.concatenate([inside[:4], outside[:4]])
        values = table.query(pack_coords(mixed))
        assert np.all(values[:4] >= 0) and np.all(values[4:] == -1)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pack_unpack_round_trip(self, seed):
        rng = random.Random(seed + 29)
        coords = random_coords(rng, 64, span=30_000, batch=rng.randrange(4))
        np.testing.assert_array_equal(
            unpack_coords(pack_coords(coords), 3), coords
        )

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            pack_coords(np.array([[0, 40_000, 0, 0]], dtype=np.int64))
        with pytest.raises(ShapeError):
            pack_coords(np.array([[-1, 0, 0, 0]], dtype=np.int64))


class TestBitmaskSorting:
    @staticmethod
    def random_masks(rng, rows, cols):
        return np.asarray(
            [[rng.random() < 0.5 for _ in range(cols)] for _ in range(rows)],
            dtype=bool,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sort_is_descending_and_a_permutation(self, seed):
        rng = random.Random(seed + 37)
        masks = self.random_masks(rng, rng.randrange(2, 64), rng.randrange(1, 9))
        order = sort_bitmasks(masks)
        assert sorted(order.tolist()) == list(range(len(masks)))
        weights = 1 << np.arange(masks.shape[1] - 1, -1, -1)
        numbers = masks[order] @ weights
        assert np.all(np.diff(numbers) <= 0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sort_is_stable_for_equal_rows(self, seed):
        rng = random.Random(seed + 41)
        # Few distinct patterns over many rows forces plenty of ties.
        patterns = self.random_masks(rng, 3, 6)
        picks = [rng.randrange(3) for _ in range(40)]
        masks = patterns[picks]
        order = sort_bitmasks(masks)
        for pattern_id in range(3):
            positions = [i for i in order.tolist() if picks[i] == pattern_id]
            assert positions == sorted(positions)

    @pytest.mark.parametrize("volume,splits", [(27, 1), (27, 3), (8, 4), (5, 5)])
    def test_split_offsets_partition_the_volume(self, volume, splits):
        segments = split_offsets(volume, splits)
        assert len(segments) == splits
        flat = np.concatenate(segments)
        np.testing.assert_array_equal(flat, np.arange(volume))
        sizes = [len(s) for s in segments]
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reordering_preserves_rows_and_never_adds_macs(self, seed):
        rng = random.Random(seed + 43)
        coords = random_coords(rng, rng.randrange(16, 48))
        nbmap = build_kernel_map(coords, kernel_size=3, stride=1).nbmap
        plan = MaskReordering.build(nbmap, num_splits=3, sort=True)
        for segment, submap in zip(plan.segments, plan.reordered_submaps(nbmap)):
            original = nbmap[:, segment]
            assert sorted(map(tuple, submap.tolist())) == sorted(
                map(tuple, original.tolist())
            )
        # Sorting reorders rows only: effective MACs are unchanged and the
        # warp-granular issued slots can only shrink.
        masks = compute_bitmasks(nbmap)
        effective, issued = warp_mac_slots(masks, warp_rows=4)
        sorted_eff, sorted_issued = warp_mac_slots(
            masks[sort_bitmasks(masks)], warp_rows=4
        )
        assert sorted_eff == effective
        assert sorted_issued <= issued


class TestQuantizeProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_quantize_is_idempotent(self, seed):
        rng = random.Random(seed + 47)
        points = np.asarray(
            [[rng.uniform(-8, 8) for _ in range(3)] for _ in range(200)]
        )
        coords, _ = sparse_quantize(points, voxel_size=0.5)
        again, _ = sparse_quantize(coords[:, 1:].astype(np.float64), 1.0)
        np.testing.assert_array_equal(again, coords)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_quantize_output_is_unique_and_covers_inputs(self, seed):
        rng = random.Random(seed + 53)
        points = np.asarray(
            [[rng.uniform(-4, 4) for _ in range(3)] for _ in range(150)]
        )
        coords, _ = sparse_quantize(points, voxel_size=0.25)
        deduped, _ = unique_coords(coords)
        assert len(deduped) == len(coords)
        voxels = {tuple(v) for v in (points // 0.25).astype(np.int64).tolist()}
        assert {tuple(c[1:]) for c in coords.tolist()} == voxels

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reduce_first_keeps_first_point_per_voxel(self, seed):
        rng = random.Random(seed + 59)
        points = np.asarray(
            [[rng.uniform(0, 2) for _ in range(3)] for _ in range(80)]
        )
        feats = np.arange(80, dtype=np.float32).reshape(-1, 1)
        coords, reduced = sparse_quantize(points, 1.0, features=feats)
        voxel_of = (points // 1.0).astype(np.int64)
        for row, value in zip(coords.tolist(), reduced[:, 0].tolist()):
            first = next(
                i for i in range(80) if tuple(voxel_of[i]) == tuple(row[1:])
            )
            assert value == float(first)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reduce_mean_averages_features(self, seed):
        rng = random.Random(seed + 61)
        points = np.asarray(
            [[rng.uniform(0, 2) for _ in range(3)] for _ in range(60)]
        )
        feats = np.asarray(
            [[rng.uniform(-1, 1)] for _ in range(60)], dtype=np.float64
        )
        coords, reduced = sparse_quantize(points, 1.0, features=feats,
                                          reduce="mean")
        voxel_of = (points // 1.0).astype(np.int64)
        for row, value in zip(coords.tolist(), reduced[:, 0].tolist()):
            members = [
                feats[i, 0] for i in range(60)
                if tuple(voxel_of[i]) == tuple(row[1:])
            ]
            assert value == pytest.approx(sum(members) / len(members))
