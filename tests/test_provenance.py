"""Cache-key soundness analyzer (repro.analyze.provenance)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analyze import provenance
from repro.analyze.provenance import (
    Exemption,
    KeyComponent,
    KeySchema,
    ReadLog,
    audit_cache_site,
    fuzz_all,
    fuzz_cache_site,
    provenance_findings,
    register_cache_site,
    wrap,
)
from repro.analyze.rules import RULES, Severity
from repro.hw.specs import DeviceSpec, get_device


@dataclasses.dataclass
class _Cfg:
    alpha: int = 1
    beta: int = 2

    def doubled_alpha(self) -> int:
        return self.alpha * 2


@pytest.fixture
def clean_registry():
    """Snapshot/restore the site registry around tests that mutate it."""
    before = dict(provenance.REGISTRY)
    yield
    for site in set(provenance.REGISTRY) - set(before):
        provenance._AUDITS.pop(site, None)
    provenance.REGISTRY.clear()
    provenance.REGISTRY.update(before)


# ---------------------------------------------------------------------- #
# Recording proxies
# ---------------------------------------------------------------------- #
def test_wrap_records_attribute_reads():
    log = ReadLog()
    cfg = wrap(_Cfg(), "cfg", log)
    assert cfg.alpha == 1
    assert cfg.beta == 2
    assert log.sorted() == ("cfg.alpha", "cfg.beta")


def test_wrap_preserves_isinstance_and_class():
    log = ReadLog()
    cfg = wrap(_Cfg(), "cfg", log)
    assert isinstance(cfg, _Cfg)
    assert cfg.__class__ is not None
    # Dunder lookups are machinery, not data reads.
    assert "__class__" not in {p.split(".", 1)[1] for p in log.paths}


def test_wrap_method_reads_are_surface_granular():
    """A method resolves through the proxy (recorded by name) but runs
    bound to the target: its internal field reads are not re-recorded."""
    log = ReadLog()
    cfg = wrap(_Cfg(alpha=3), "cfg", log)
    assert cfg.doubled_alpha() == 6
    assert log.sorted() == ("cfg.doubled_alpha",)


def test_wrap_frozen_dataclass_and_properties():
    log = ReadLog()
    spec = wrap(get_device("a100"), "device", log)
    assert isinstance(spec, DeviceSpec)
    assert spec.sms == 108
    assert "device.sms" in log.paths


def test_wrap_distinct_names_share_one_log():
    log = ReadLog()
    a = wrap(_Cfg(), "a", log)
    b = wrap(_Cfg(), "b", log)
    assert a.alpha == 1 and b.beta == 2
    assert log.sorted() == ("a.alpha", "b.beta")


# ---------------------------------------------------------------------- #
# Schema coverage semantics
# ---------------------------------------------------------------------- #
def _schema(site, components, exemptions=(), probe=None, declared=()):
    return KeySchema(
        site=site,
        description="test schema",
        components=tuple(components),
        declared_reads=tuple(declared),
        exemptions=tuple(exemptions),
        probe=probe,
    )


def _probe_alpha_only():
    log = ReadLog()
    cfg = wrap(_Cfg(), "cfg", log)
    assert cfg.alpha == 1
    return log


def _probe_both():
    log = ReadLog()
    cfg = wrap(_Cfg(), "cfg", log)
    assert cfg.alpha == 1 and cfg.beta == 2
    return log


def test_audit_flags_unkeyed_read(clean_registry):
    register_cache_site(
        _schema(
            "test.unkeyed",
            [KeyComponent("alpha", covers=("cfg.alpha",))],
            probe=_probe_both,
        )
    )
    audit = audit_cache_site("test.unkeyed")
    assert audit.unkeyed == ("cfg.beta",)
    assert not audit.sound


def test_audit_flags_overkeyed_component(clean_registry):
    register_cache_site(
        _schema(
            "test.overkeyed",
            [
                KeyComponent("alpha", covers=("cfg.alpha",)),
                KeyComponent("beta", covers=("cfg.beta",)),
            ],
            probe=_probe_alpha_only,
        )
    )
    audit = audit_cache_site("test.overkeyed")
    assert audit.sound
    assert audit.overkeyed == ("beta",)


def test_conditional_component_is_never_overkeyed(clean_registry):
    register_cache_site(
        _schema(
            "test.conditional",
            [
                KeyComponent("alpha", covers=("cfg.alpha",)),
                KeyComponent(
                    "beta", covers=("cfg.beta",), conditional=True
                ),
            ],
            probe=_probe_alpha_only,
        )
    )
    assert audit_cache_site("test.conditional").overkeyed == ()


def test_exemption_downgrades_unkeyed_read(clean_registry):
    register_cache_site(
        _schema(
            "test.exempt",
            [KeyComponent("alpha", covers=("cfg.alpha",))],
            exemptions=[Exemption("cfg.beta", "deliberately unkeyed")],
            probe=_probe_both,
        )
    )
    audit = audit_cache_site("test.exempt")
    assert audit.sound
    assert audit.exempted == (("cfg.beta", "deliberately unkeyed"),)


def test_declared_reads_cover_by_value_inputs(clean_registry):
    register_cache_site(
        _schema(
            "test.declared",
            [KeyComponent("alpha", covers=("cfg.alpha",))],
            probe=_probe_both,
            declared=("cfg.beta",),
        )
    )
    assert audit_cache_site("test.declared").sound


def test_coverage_is_prefix_based_not_substring(clean_registry):
    def probe():
        log = ReadLog()
        log.add("cfg.alphabet")
        return log

    register_cache_site(
        _schema(
            "test.prefix",
            [KeyComponent("alpha", covers=("cfg.alpha",))],
            probe=probe,
        )
    )
    # "cfg.alphabet" is not "cfg.alpha" nor under "cfg.alpha." — unkeyed.
    assert audit_cache_site("test.prefix").unkeyed == ("cfg.alphabet",)


# ---------------------------------------------------------------------- #
# Audit memoization and registry
# ---------------------------------------------------------------------- #
def test_audits_memoized_per_schema_object(clean_registry):
    calls = []

    def probe():
        calls.append(1)
        return _probe_alpha_only()

    schema = _schema(
        "test.memo", [KeyComponent("alpha", covers=("cfg.alpha",))],
        probe=probe,
    )
    register_cache_site(schema)
    first = audit_cache_site("test.memo")
    assert audit_cache_site("test.memo") is first
    assert len(calls) == 1
    # Re-registering a new schema object invalidates the memo.
    register_cache_site(dataclasses.replace(schema))
    audit_cache_site("test.memo")
    assert len(calls) == 2


def test_unknown_site_is_a_usage_error():
    with pytest.raises(ValueError, match="unknown cache site"):
        audit_cache_site("test.no-such-site")


def test_probe_less_schema_rejected(clean_registry):
    register_cache_site(_schema("test.noprobe", [KeyComponent("k")]))
    with pytest.raises(ValueError, match="declares no probe"):
        audit_cache_site("test.noprobe")


# ---------------------------------------------------------------------- #
# Lint integration
# ---------------------------------------------------------------------- #
def test_provenance_rules_registered():
    assert "unkeyed-read" in RULES
    assert "overkeyed-field" in RULES


def test_builtin_sites_audit_sound():
    for site in (
        "gpusim.trace-memo",
        "serve.policy-cache",
        "serve.kmap-batch-memo",
        "serve.sample-memo",
        "autotune.tuning-db",
    ):
        audit = audit_cache_site(site)
        assert audit.sound, f"{site}: {audit.unkeyed}"
        assert audit.overkeyed == (), f"{site}: {audit.overkeyed}"
        assert audit.reads  # a probe that read nothing proves nothing


def test_findings_surface_planted_unkeyed_read(clean_registry):
    from tests.broken_caches import SITE, register_unsound

    register_unsound()
    findings = [f for f in provenance_findings() if f.path == SITE]
    assert findings
    worst = findings[0]
    assert worst.rule == "unkeyed-read"
    assert worst.severity is Severity.ERROR
    assert worst.data["read"] == "launch.flops"


# ---------------------------------------------------------------------- #
# Differential fuzzing
# ---------------------------------------------------------------------- #
def test_fuzz_all_builtin_sites_pass():
    for site, report in fuzz_all(seed=3).items():
        assert report.ok, f"{site}: {report.failures}"
        assert report.trials > 0, f"{site} fuzzer ran no trials"


def test_fuzz_without_fuzzer_reports_zero_trials(clean_registry):
    register_cache_site(
        _schema(
            "test.nofuzz",
            [KeyComponent("alpha", covers=("cfg.alpha",))],
            probe=_probe_alpha_only,
        )
    )
    report = fuzz_cache_site("test.nofuzz", seed=0)
    assert report.ok and report.trials == 0


# ---------------------------------------------------------------------- #
# Shared scene-key canonicalization (satellite)
# ---------------------------------------------------------------------- #
def test_scene_key_single_derivation():
    from repro.serve.cache import scene_key
    from repro.serve.request import InferenceRequest

    request = InferenceRequest(
        request_id=0,
        workload_id="SK-M-0.5",
        stream_id=0,
        frame_index=0,
        scene_seed=7,
        arrival_ms=0.0,
        deadline_ms=100.0,
    )
    assert request.scene_key == scene_key("SK-M-0.5", 7) == ("SK-M-0.5", 7)
    # Canonicalization coerces, so np.int64 seeds cannot split the key.
    assert scene_key("SK-M-0.5", True) == ("SK-M-0.5", 1)


def test_device_spec_hash_is_cached_and_stable():
    spec = get_device("a100")
    first = hash(spec)
    assert hash(spec) == first
    clone = dataclasses.replace(spec)
    assert clone == spec and hash(clone) == first
