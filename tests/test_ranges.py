"""Tests for the static value-range pass and its lint/veto integration."""

import math

import pytest

from repro.analyze import (
    lint_model,
    model_range_report,
    precision_drop_veto,
    propagate_ranges,
    trace_model,
)
from repro.analyze.ranges import FP16_MAX, RANGE_SIGMA, ValueRange
from repro.models import get_workload
from repro.nn.blocks import ConvBlock
from repro.nn.conv import SparseConv3d
from repro.nn.sequential import Sequential


class _UnsafeNet(Sequential):
    """Two convs with weights scaled x10^4 and no normalization: the
    propagated range blows past fp16 within two layers."""

    def __init__(self, scale: float = 1e4):
        c1 = SparseConv3d(4, 8, kernel_size=3, label="c1", seed=0)
        c2 = SparseConv3d(8, 8, kernel_size=3, label="c2", seed=1)
        for conv in (c1, c2):
            conv.weight.data *= scale
        super().__init__(c1, c2)


class _SafeNet(Sequential):
    """Conv + norm blocks: normalization resets the range every layer."""

    def __init__(self):
        super().__init__(
            ConvBlock(4, 8, 3, label="b1", seed=0),
            ConvBlock(8, 8, 3, label="b2", seed=1),
        )


class TestValueRange:
    def test_magnitude_is_min_of_bound_and_sigma_rms(self):
        assert ValueRange(10.0, 100.0).magnitude == 10.0
        assert ValueRange(1e9, 2.0).magnitude == RANGE_SIGMA * 2.0

    def test_weight_stats_captured_on_conv_nodes(self):
        ir = trace_model(_SafeNet(), in_channels=4)
        convs = ir.conv_nodes()
        assert convs
        for node in convs:
            assert node.weight_abs_max is not None and node.weight_abs_max > 0
            assert node.weight_rms is not None and node.weight_rms > 0
            assert node.weight_abs_max >= node.weight_rms


class TestPropagation:
    def test_norm_resets_range(self):
        ir = trace_model(_SafeNet(), in_channels=4)
        report = propagate_ranges(ir)
        norm_layers = [l for l in report.layers if l.kind == "norm"]
        assert norm_layers
        for layer in norm_layers:
            assert layer.out_range.rms == 1.0
            assert layer.out_range.abs_max == RANGE_SIGMA

    def test_activation_halves_power(self):
        ir = trace_model(_SafeNet(), in_channels=4)
        report = propagate_ranges(ir)
        layers = report.layers
        for i, layer in enumerate(layers):
            if layer.kind == "activation":
                before = (
                    layers[i - 1].out_range if i else report.input_range
                )
                assert layer.out_range.rms == pytest.approx(
                    before.rms / math.sqrt(2.0)
                )

    def test_conv_scales_by_fan_in(self):
        ir = trace_model(_UnsafeNet(scale=1.0), in_channels=4)
        report = propagate_ranges(ir, ValueRange(abs_max=1.0, rms=1.0))
        first = report.layers[0]
        node = ir.conv_nodes()[0]
        fan_in = 27 * 4
        assert first.out_range.abs_max == pytest.approx(
            fan_in * node.weight_abs_max
        )
        assert first.out_range.rms == pytest.approx(
            node.weight_rms * math.sqrt(fan_in)
        )

    def test_safe_model_is_fp16_safe(self):
        report = model_range_report(_SafeNet(), in_channels=4)
        assert report.fp16_safe
        assert report.veto_reason() is None
        for layer in report.layers:
            assert layer.out_range.magnitude <= FP16_MAX

    def test_unsafe_model_overflows_and_vetoes(self):
        report = model_range_report(_UnsafeNet(), in_channels=4)
        assert not report.fp16_safe
        assert report.overflowing()
        reason = report.veto_reason()
        assert reason is not None and "overflow" in reason
        ir = trace_model(_UnsafeNet(), in_channels=4)
        assert precision_drop_veto(ir) == reason

    def test_bundled_workloads_are_fp16_safe(self):
        # He-initialized + normalized networks: the paper's fp16 serving
        # path must not be vetoed for any bundled workload.
        for wl_id in ("SK-M-0.5", "NS-C-10f"):
            workload = get_workload(wl_id)
            report = model_range_report(
                workload.build_model(),
                in_channels=workload.dataset_config.in_channels,
            )
            assert report.fp16_safe, wl_id


class TestFp16OverflowRule:
    def test_fires_as_error_at_fp16(self):
        findings = lint_model(
            _UnsafeNet(), in_channels=4, precision="fp16",
            rules=["fp16-overflow"],
        )
        assert findings
        assert all(f.severity.value == "error" for f in findings)
        assert all(f.rule == "fp16-overflow" for f in findings)

    def test_downgrades_to_warning_at_fp32(self):
        findings = lint_model(
            _UnsafeNet(), in_channels=4, precision="fp32",
            rules=["fp16-overflow"],
        )
        assert findings
        assert all(f.severity.value == "warning" for f in findings)

    def test_silent_on_safe_model(self):
        assert (
            lint_model(
                _SafeNet(), in_channels=4, precision="fp16",
                rules=["fp16-overflow"],
            )
            == []
        )


class TestAccumOrderRule:
    def _findings(self, dataflow, precision="fp16"):
        from repro.kernels.registry import Dataflow
        from repro.nn.context import FixedPolicy, LayerConfig

        policy = FixedPolicy(LayerConfig(dataflow=Dataflow(dataflow)))
        return lint_model(
            _SafeNet(), in_channels=4, precision=precision, policy=policy,
            rules=["accum-order-nondeterminism"],
        )

    def test_silent_for_implicit_gemm(self):
        assert self._findings("implicit_gemm") == []

    def test_flags_atomic_dataflows(self):
        findings = self._findings("fetch_on_demand")
        assert findings
        assert all(
            f.rule == "accum-order-nondeterminism" for f in findings
        )
        # 27-offset fp16 chains are a warning; below that, info.
        assert all(f.severity.value == "warning" for f in findings)
        assert self._findings("fetch_on_demand", precision="fp32")
        assert all(
            f.severity.value == "info"
            for f in self._findings("fetch_on_demand", precision="fp32")
        )

    def test_bundled_workloads_stay_quiet_by_default(self):
        from repro.analyze import lint_workload

        for wl_id in ("SK-M-0.5", "NS-C-10f"):
            assert (
                lint_workload(
                    wl_id, rules=["accum-order-nondeterminism"]
                )
                == []
            ), wl_id
