"""Tests for the memory model and the OOM degradation ladder.

Covers the full recovery stack bottom-up: per-launch workspace
annotations (monotonicity properties), the footprint model
(weights/features/workspace decomposition, batch chunking, warm vs cold),
the ladder planner (strict-reduction take logic, determinism), the
numerics of degraded configurations against the dense reference, and the
serving runtime's injected-OOM path (zero failed requests, byte-stable
seeded runs, memory-aware admission).
"""

import dataclasses

import numpy as np
import pytest

from repro.analyze import check_trace, lint_model, static_weight_bytes
from repro.errors import AdmissionError, ConfigError, DeviceError, SimulatedOOMError
from repro.gpusim.engine import enforce_memory_budget, memory_budget_bytes
from repro.gpusim.trace import KernelLaunch, KernelTrace, LaunchKind
from repro.hw.specs import get_device, list_devices, register_device
from repro.kernels import run_dataflow
from repro.kernels.registry import DATAFLOWS, Dataflow, trace_dataflow
from repro.models import get_workload
from repro.nn.context import FixedPolicy, LayerConfig
from repro.precision import Precision
from repro.resilience import (
    DEFAULT_RUNGS,
    DegradationLadder,
    ExecState,
    apply_rung,
    model_footprint,
    model_weight_bytes,
)
from repro.sparse.kmap import build_kernel_map
from tests.test_dataflow_differential import (
    TOLERANCES,
    build_case,
    dense_reference,
    random_coords,
)

WORKLOAD = "SK-M-0.5"
SCALE = 0.1


# ---------------------------------------------------------------------- #
# Workspace monotonicity properties
# ---------------------------------------------------------------------- #
class TestWorkspaceMonotonicity:
    """Peak workspace must be monotone in problem size for every dataflow.

    Point sets are nested (prefixes of one pool), so every kernel-map
    pair of the smaller problem exists in the larger one, and workspace
    formulas — functions of pairs, outputs and channel counts — can only
    grow.  Channel monotonicity is non-strict: some dataflows' workspace
    (e.g. implicit GEMM without splits) is channel-independent.
    """

    POOL = random_coords(96, seed=3)

    def _peak(self, dataflow, kmap, c_in, c_out):
        trace = trace_dataflow(dataflow, kmap, c_in, c_out)
        return trace.summary().peak_workspace_bytes

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    @pytest.mark.parametrize("kernel_size,stride", [(3, 1), (2, 2)])
    def test_monotone_in_points(self, dataflow, kernel_size, stride):
        peaks = []
        for n in (24, 48, 96):
            kmap = build_kernel_map(self.POOL[:n], kernel_size, stride=stride)
            peaks.append(self._peak(dataflow, kmap, 8, 16))
        assert peaks[0] > 0
        assert peaks[0] <= peaks[1] <= peaks[2]

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_monotone_in_channels(self, dataflow):
        kmap = build_kernel_map(self.POOL[:48], 3, stride=1)
        in_sweep = [self._peak(dataflow, kmap, c, 16) for c in (2, 4, 8, 16)]
        out_sweep = [self._peak(dataflow, kmap, 8, c) for c in (2, 4, 8, 16)]
        for sweep in (in_sweep, out_sweep):
            for lo, hi in zip(sweep, sweep[1:]):
                assert lo <= hi


# ---------------------------------------------------------------------- #
# Footprint model
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload():
    return get_workload(WORKLOAD)


@pytest.fixture(scope="module")
def model(workload):
    built = workload.build_model()
    built.eval()
    return built


@pytest.fixture(scope="module")
def samples(workload):
    from repro.data.datasets import make_sample

    return [
        make_sample(
            workload.dataset, frames=workload.frames, seed=i, scale=SCALE
        )
        for i in range(2)
    ]


class TestFootprintModel:
    def test_weight_bytes_track_precision(self, model):
        fp16 = model_weight_bytes(model, Precision.FP16)
        fp32 = model_weight_bytes(model, Precision.FP32)
        assert fp16 == 2.0 * model.num_parameters()
        assert fp32 == 2.0 * fp16

    def test_report_decomposes_and_fits(self, model, samples):
        report = model_footprint(model, samples, device="a100")
        assert report.weights_bytes > 0
        assert report.peak_feature_bytes > 0
        assert report.peak_workspace_bytes > 0
        assert report.total_bytes == (
            report.weights_bytes
            + report.peak_feature_bytes
            + report.peak_workspace_bytes
        )
        assert report.fits(report.total_bytes)
        assert not report.fits(report.total_bytes - 1.0)

    def test_batch_chunks_divide_features_not_workspace(self, model, samples):
        whole = model_footprint(model, samples, batch_chunks=1)
        halved = model_footprint(model, samples, batch_chunks=2)
        assert halved.peak_feature_bytes < whole.peak_feature_bytes
        assert halved.peak_workspace_bytes == pytest.approx(
            whole.peak_workspace_bytes
        )
        # Chunks clamp to the batch size: 99 chunks of 2 samples == 2 chunks.
        clamped = model_footprint(model, samples, batch_chunks=99)
        assert clamped.peak_feature_bytes == halved.peak_feature_bytes

    def test_warm_excludes_map_construction(self, model, samples):
        cold = model_footprint(model, samples)
        warm = model_footprint(model, samples, warm=True)
        assert warm.peak_workspace_bytes < cold.peak_workspace_bytes
        assert warm.weights_bytes == cold.weights_bytes
        assert warm.peak_feature_bytes == cold.peak_feature_bytes

    def test_monotone_in_batch_size(self, model, samples):
        one = model_footprint(model, samples[:1])
        two = model_footprint(model, samples)
        assert one.peak_feature_bytes < two.peak_feature_bytes
        assert one.peak_workspace_bytes <= two.peak_workspace_bytes
        assert one.total_bytes < two.total_bytes

    def test_deterministic(self, model, samples):
        a = model_footprint(model, samples, warm=True)
        b = model_footprint(model, samples, warm=True)
        assert a == b

    def test_table_renders(self, model, samples):
        report = model_footprint(model, samples)
        table = report.table()
        assert "ws MiB" in table
        assert "total (weights + features + workspace)" in table
        assert len(report.layers) > 0

    def test_validation(self, model, samples):
        with pytest.raises(ValueError, match="at least one sample"):
            model_footprint(model, [])
        with pytest.raises(ValueError, match="batch_chunks"):
            model_footprint(model, samples, batch_chunks=0)


# ---------------------------------------------------------------------- #
# Ladder planner
# ---------------------------------------------------------------------- #
def state(dataflow=Dataflow.IMPLICIT_GEMM, precision=Precision.FP32,
          gs_chunks=1, batch_chunks=1):
    return ExecState(
        config=LayerConfig(dataflow=dataflow, gs_chunks=gs_chunks),
        precision=precision,
        batch_chunks=batch_chunks,
    )


class TestApplyRung:
    def test_dataflow_switch_and_noop(self):
        s = state()
        switched = apply_rung(s, "dataflow:fetch_on_demand")
        assert switched.config.dataflow is Dataflow.FETCH_ON_DEMAND
        assert s.config.dataflow is Dataflow.IMPLICIT_GEMM  # original intact
        assert apply_rung(switched, "dataflow:fetch_on_demand") is None

    def test_chunks_require_gather_scatter_and_increase(self):
        assert apply_rung(state(), "chunks:2") is None
        gs = state(dataflow=Dataflow.GATHER_SCATTER)
        chunked = apply_rung(gs, "chunks:2")
        assert chunked.config.gs_chunks == 2
        assert apply_rung(chunked, "chunks:2") is None
        assert apply_rung(chunked, "chunks:4").config.gs_chunks == 4

    def test_precision_drop(self):
        assert apply_rung(state(), "precision:drop").precision is Precision.FP16
        tf32 = state(precision=Precision.TF32)
        assert apply_rung(tf32, "precision:drop").precision is Precision.FP16
        fp16 = state(precision=Precision.FP16)
        assert apply_rung(fp16, "precision:drop") is None

    def test_batch_chunking_only_increases(self):
        assert apply_rung(state(), "batch:2").batch_chunks == 2
        two = state(batch_chunks=2)
        assert apply_rung(two, "batch:2") is None
        assert apply_rung(two, "batch:8").batch_chunks == 8

    def test_unknown_rung_raises(self):
        with pytest.raises(ValueError, match="unknown ladder rung"):
            apply_rung(state(), "voodoo:3")


def synthetic_footprint(s):
    """Hand-built footprint: IG 100, GS 95 (90 chunked), FOD 70 units;
    precision drop and batch chunking shave the remainder."""
    base = {
        Dataflow.IMPLICIT_GEMM: 100.0,
        Dataflow.GATHER_SCATTER: 95.0,
        Dataflow.FETCH_ON_DEMAND: 70.0,
    }.get(s.config.dataflow, 100.0)
    if s.config.gs_chunks > 1:
        base -= 5.0
    if s.precision is Precision.FP16:
        base -= 10.0
    return base / (1.0 + 0.1 * (s.batch_chunks - 1))


class TestLadderPlanner:
    def test_stops_at_first_fitting_state(self):
        plan = DegradationLadder().plan(synthetic_footprint, state(), 75.0)
        assert plan.fits
        assert plan.taken == (
            "dataflow:gather_scatter", "dataflow:fetch_on_demand",
        )
        assert plan.final_bytes == 70.0
        assert plan.final.config.dataflow is Dataflow.FETCH_ON_DEMAND
        # The walk stopped: chunk/precision/batch rungs were never evaluated.
        assert len(plan.steps) == 2

    def test_every_taken_step_strictly_reduces(self):
        plan = DegradationLadder().plan(synthetic_footprint, state(), 0.0)
        assert not plan.fits  # budget 0 is unreachable
        taken = [s for s in plan.steps if s.taken]
        assert taken
        for step in taken:
            assert step.after_bytes < step.before_bytes
            assert step.delta_bytes < 0
        # The walk visits every rung and ends at the floor of the model.
        assert len(plan.steps) == len(DEFAULT_RUNGS)
        assert plan.final_bytes == min(s.after_bytes for s in plan.steps)

    def test_skips_are_logged_with_reasons(self):
        def gs_is_worse(s):
            if s.config.dataflow is Dataflow.GATHER_SCATTER:
                return 120.0
            return synthetic_footprint(s)

        plan = DegradationLadder().plan(gs_is_worse, state(), 60.0)
        notes = {s.rung: s.note for s in plan.steps if not s.taken}
        assert notes["dataflow:gather_scatter"] == "does not reduce"
        # chunks rungs need gather-scatter, which was skipped.
        assert notes["chunks:2"] == "not applicable"

    def test_no_steps_when_already_fitting(self):
        plan = DegradationLadder().plan(synthetic_footprint, state(), 500.0)
        assert plan.steps == ()
        assert plan.fits and plan.final == plan.start
        assert plan.start_bytes == plan.final_bytes == 100.0

    def test_plan_is_deterministic(self):
        plans = [
            DegradationLadder().plan(synthetic_footprint, state(), 55.0)
            for _ in range(2)
        ]
        assert plans[0] == plans[1]
        assert plans[0].describe() == plans[1].describe()

    def test_describe_mentions_every_rung_outcome(self):
        plan = DegradationLadder().plan(synthetic_footprint, state(), 55.0)
        text = plan.describe()
        for step in plan.steps:
            assert step.rung in text
        assert ("fits" in text) or ("DOES NOT FIT" in text)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one rung"):
            DegradationLadder(rungs=())

    def test_real_model_ladder_reduces_warm_footprint(self, model, samples):
        memo = {}

        def footprint(s):
            if s not in memo:
                memo[s] = model_footprint(
                    model, samples,
                    device="rtx3090",
                    precision=s.precision,
                    policy=FixedPolicy(s.config),
                    batch_chunks=s.batch_chunks,
                    warm=True,
                ).total_bytes
            return memo[s]

        start = state(precision=Precision.FP16)
        budget = footprint(start) * 0.999  # just below steady state
        plan = DegradationLadder().plan(footprint, start, budget)
        assert plan.taken
        assert plan.final_bytes < plan.start_bytes
        for step in plan.steps:
            if step.taken:
                assert step.after_bytes < step.before_bytes
        # Fetch-on-demand is the minimal-workspace dataflow: from the
        # default implicit-GEMM config the ladder always reaches it.
        assert "dataflow:fetch_on_demand" in plan.taken


class TestPrecisionVeto:
    """The value-range pass can veto the precision:drop rung: the planner
    must skip it (recording the reason) and degrade through other rungs."""

    BUDGET = 60.0  # reachable only via precision:drop or batch chunking

    def test_without_veto_precision_drop_is_taken(self):
        plan = DegradationLadder().plan(synthetic_footprint, state(), self.BUDGET)
        assert plan.fits
        assert "precision:drop" in plan.taken
        assert plan.final.precision is Precision.FP16

    def test_veto_skips_rung_and_records_reason(self):
        plan = DegradationLadder().plan(
            synthetic_footprint, state(), self.BUDGET,
            precision_veto="fp16 value range: 2 layer(s) overflow",
        )
        notes = {s.rung: s.note for s in plan.steps if not s.taken}
        assert notes["precision:drop"] == (
            "vetoed: fp16 value range: 2 layer(s) overflow"
        )
        assert "precision:drop" not in plan.taken
        # The plan still converges — through batch chunking — and never
        # enters a reduced-precision state.
        assert plan.fits
        assert plan.final.precision is Precision.FP32
        for step in plan.steps:
            assert step.after_bytes <= step.before_bytes

    def test_vetoed_rung_charges_no_footprint_change(self):
        plan = DegradationLadder().plan(
            synthetic_footprint, state(), self.BUDGET, precision_veto="unsafe",
        )
        vetoed = [s for s in plan.steps if s.note.startswith("vetoed:")]
        assert len(vetoed) == 1
        assert vetoed[0].before_bytes == vetoed[0].after_bytes

    def test_range_pass_drives_the_veto_end_to_end(self):
        from repro.analyze import precision_drop_veto, trace_model
        from tests.test_ranges import _SafeNet, _UnsafeNet

        # A well-normalized model is fp16-safe: no veto, the rung stays
        # available (its numerics are validated against the dense
        # reference in TestDegradedNumerics.test_precision_drop_matches_dense).
        assert precision_drop_veto(trace_model(_SafeNet(), in_channels=4)) is None

        reason = precision_drop_veto(trace_model(_UnsafeNet(), in_channels=4))
        assert reason is not None and "overflow" in reason
        plan = DegradationLadder().plan(
            synthetic_footprint, state(), self.BUDGET, precision_veto=reason,
        )
        assert "precision:drop" not in plan.taken
        notes = {s.rung: s.note for s in plan.steps if not s.taken}
        assert notes["precision:drop"] == f"vetoed: {reason}"


# ---------------------------------------------------------------------- #
# Degraded configurations stay numerically correct
# ---------------------------------------------------------------------- #
class TestDegradedNumerics:
    """Every state the ladder can degrade into must still compute the
    convolution: against the dense reference, not just the baseline."""

    @pytest.mark.parametrize("gs_chunks", [2, 4])
    def test_chunked_gather_scatter_matches_dense(self, gs_chunks):
        coords, feats, weights, kmap = build_case(3, 1, 1, seed=11)
        out, _ = run_dataflow(
            Dataflow.GATHER_SCATTER, feats, weights, kmap,
            precision=Precision.FP32, gs_chunks=gs_chunks,
        )
        ref = dense_reference(coords, feats, weights, kmap)
        np.testing.assert_allclose(
            out, ref, **TOLERANCES[Precision.FP32]
        )
        unchunked, _ = run_dataflow(
            Dataflow.GATHER_SCATTER, feats, weights, kmap,
            precision=Precision.FP32,
        )
        np.testing.assert_allclose(out, unchunked, rtol=1e-6, atol=1e-7)

    @pytest.mark.parametrize("precision", [Precision.FP32, Precision.FP16])
    def test_fetch_on_demand_matches_dense(self, precision):
        coords, feats, weights, kmap = build_case(2, 2, 1, seed=12)
        out, _ = run_dataflow(
            Dataflow.FETCH_ON_DEMAND, feats, weights, kmap,
            precision=precision,
        )
        ref = dense_reference(coords, feats, weights, kmap)
        np.testing.assert_allclose(out, ref, **TOLERANCES[precision])

    def test_precision_drop_matches_dense(self):
        # The ladder's precision rung: same dataflow, FP32 -> FP16 storage.
        coords, feats, weights, kmap = build_case(3, 1, 1, seed=13)
        out, _ = run_dataflow(
            Dataflow.IMPLICIT_GEMM, feats, weights, kmap,
            precision=Precision.FP16,
        )
        ref = dense_reference(coords, feats, weights, kmap)
        np.testing.assert_allclose(out, ref, **TOLERANCES[Precision.FP16])


# ---------------------------------------------------------------------- #
# Device budgets and the simulated-OOM check
# ---------------------------------------------------------------------- #
class TestMemoryBudget:
    def test_every_device_declares_dram(self):
        for device in list_devices():
            assert device.dram_gib > 0
            assert device.dram_bytes == device.dram_gib * (1 << 30)

    def test_zero_dram_rejected(self):
        with pytest.raises(DeviceError, match="DRAM"):
            dataclasses.replace(get_device("a100"), dram_gib=0.0)

    def test_budget_headroom(self):
        a100 = get_device("a100")
        assert memory_budget_bytes(a100) == a100.dram_bytes
        assert memory_budget_bytes(a100, 0.25) == pytest.approx(
            0.75 * a100.dram_bytes
        )
        for bad in (-0.1, 1.0):
            with pytest.raises(ValueError, match="headroom"):
                memory_budget_bytes(a100, bad)

    def test_enforce_returns_peak_or_raises(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=0)
        trace = trace_dataflow(Dataflow.GATHER_SCATTER, kmap, 8, 16)
        device = get_device("a100")
        peak_ws = trace.summary().peak_workspace_bytes
        assert peak_ws > 0

        peak = enforce_memory_budget(trace, device, resident_bytes=1000.0)
        assert peak == pytest.approx(peak_ws + 1000.0)

        with pytest.raises(SimulatedOOMError) as exc:
            enforce_memory_budget(
                trace, device, resident_bytes=1000.0,
                budget_bytes=peak_ws,  # resident pushes it over
            )
        assert exc.value.peak_bytes == pytest.approx(peak)
        assert exc.value.budget_bytes == pytest.approx(peak_ws)
        assert exc.value.peak_bytes > exc.value.budget_bytes

        with pytest.raises(ValueError, match="resident_bytes"):
            enforce_memory_budget(trace, device, resident_bytes=-1.0)


# ---------------------------------------------------------------------- #
# Trace sanitizer: workspace invariants
# ---------------------------------------------------------------------- #
class _StubTrace:
    """Iterable of launches with a forged summary, for invariant tests."""

    def __init__(self, launches, summary):
        self._launches = list(launches)
        self._summary = summary

    def __iter__(self):
        return iter(self._launches)

    def summary(self):
        return self._summary


class TestWorkspaceInvariants:
    def test_real_conv_traces_are_clean(self):
        _, _, _, kmap = build_case(3, 1, 1, seed=1)
        for dataflow in DATAFLOWS:
            trace = trace_dataflow(dataflow, kmap, 8, 16)
            assert check_trace(trace) == []

    def test_negative_workspace_flagged(self):
        # The launch constructor itself refuses negative workspace...
        with pytest.raises(ValueError, match="workspace_bytes"):
            KernelLaunch("bad/ws", LaunchKind.GEMM, workspace_bytes=-64.0)
        # ...and the sanitizer catches one smuggled past it.
        import types

        forged = types.SimpleNamespace(
            name="bad/ws", kind=LaunchKind.GEMM, flops=0.0,
            dram_read_bytes=0.0, dram_write_bytes=0.0,
            atomic_write_bytes=0.0, scalar_ops=0.0,
            workspace_bytes=-64.0, ctas=1, compute_efficiency=1.0,
        )
        trace = _StubTrace(
            [forged], types.SimpleNamespace(peak_workspace_bytes=0.0)
        )
        violations = check_trace(trace)
        assert any(
            v.invariant == "non-negative" and "workspace_bytes" in v.message
            for v in violations
        )

    def test_summary_below_largest_launch_flagged(self):
        launches = [
            KernelLaunch("a/gather", LaunchKind.MEMORY, workspace_bytes=4096.0)
        ]
        import types

        broken = _StubTrace(
            launches, types.SimpleNamespace(peak_workspace_bytes=0.0)
        )
        violations = check_trace(broken)
        assert [v.invariant for v in violations] == ["peak-workspace"]
        honest = _StubTrace(
            launches, types.SimpleNamespace(peak_workspace_bytes=4096.0)
        )
        assert check_trace(honest) == []


# ---------------------------------------------------------------------- #
# Static peak-memory lint rule
# ---------------------------------------------------------------------- #
class TestPeakMemoryLint:
    def _findings(self, model, workload, dram_gib):
        device = dataclasses.replace(get_device("a100"), dram_gib=dram_gib)
        return [
            f for f in lint_model(
                model,
                in_channels=workload.dataset_config.in_channels,
                device=device,
                precision=Precision.FP16,
            )
            if f.rule == "peak-memory"
        ]

    def test_static_weights_lower_bound_runtime_weights(self, model, workload):
        from repro.analyze import analyze_model

        ir = analyze_model(
            model, in_channels=workload.dataset_config.in_channels
        )
        fp16 = static_weight_bytes(ir, Precision.FP16)
        fp32 = static_weight_bytes(ir, Precision.FP32)
        assert 0 < fp16 <= model_weight_bytes(model, Precision.FP16)
        assert fp32 == 2.0 * fp16

    def test_severity_tracks_capacity(self, model, workload):
        weights = model_weight_bytes(model, Precision.FP16)
        gib = float(1 << 30)
        # Comfortable capacity: silent.
        assert self._findings(model, workload, 40.0) == []
        # Weights land between 80% and 100% of DRAM: warning.
        warn = self._findings(model, workload, 1.1 * weights / gib)
        assert [f.severity.value for f in warn] == ["warning"]
        # Weights alone exceed DRAM: error, with the numbers attached.
        err = self._findings(model, workload, 0.5 * weights / gib)
        assert [f.severity.value for f in err] == ["error"]
        assert err[0].data["weight_bytes"] <= weights
        assert err[0].data["weight_bytes"] > err[0].data["dram_bytes"]


# ---------------------------------------------------------------------- #
# Serving: injected OOMs degrade, never fail
# ---------------------------------------------------------------------- #
from repro.serve import (  # noqa: E402
    FaultInjector,
    FaultPlan,
    PoissonArrivals,
    ServeConfig,
    ServingRuntime,
    generate_requests,
)


@pytest.fixture(scope="module")
def oom_schedule():
    return generate_requests(
        WORKLOAD, PoissonArrivals(rate_per_s=80, seed=5),
        count=8, num_streams=2, deadline_ms=2000.0,
    )


def oom_config(**overrides):
    base = dict(
        device="rtx3090", precision="fp16", scene_scale=SCALE,
        queue_depth=16,
        faults=FaultPlan(oom_rate=0.5, seed=5),
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestServingOOM:
    def test_oom_rate_validation_and_parse(self):
        with pytest.raises(ConfigError, match="oom_rate"):
            FaultPlan(oom_rate=1.5)
        plan = FaultPlan.parse("oom=0.25", seed=3)
        assert plan.oom_rate == 0.25
        assert plan.active

    def test_oom_draws_deterministic_and_order_free(self):
        plan = FaultPlan(oom_rate=0.5, seed=5)
        forward = FaultInjector(plan, replicas=1)
        backward = FaultInjector(plan, replicas=1)
        hits = [forward.batch_ooms(b) for b in range(20)]
        assert any(hits) and not all(hits)
        assert forward.batch_ooms_injected == sum(hits)
        # The draw is keyed on (seed, batch id), not on call order.
        assert [backward.batch_ooms(b) for b in reversed(range(20))] == list(
            reversed(hits)
        )
        # A different seed reshuffles the hit pattern.
        other = FaultInjector(FaultPlan(oom_rate=0.5, seed=6), replicas=1)
        assert [other.batch_ooms(b) for b in range(20)] != hits

    def test_injected_ooms_degrade_but_never_fail(self, oom_schedule):
        result = ServingRuntime(oom_config()).serve(oom_schedule)
        m = result.metrics
        assert m.completed == len(oom_schedule)
        assert m.failed == 0 and m.shed == 0 and m.timed_out == 0
        assert m.oom_events > 0
        assert m.ladder_steps >= m.oom_events
        assert m.oom_degraded > 0
        recovered = [o for o in result.outcomes if o.ladder]
        assert len(recovered) == m.oom_degraded
        for outcome in recovered:
            assert outcome.completed and outcome.degraded
            assert all(rung in DEFAULT_RUNGS for rung in outcome.ladder)

    def test_seeded_oom_runs_are_identical(self, oom_schedule):
        results = [
            ServingRuntime(oom_config()).serve(oom_schedule)
            for _ in range(2)
        ]
        assert (
            results[0].metrics.to_json() == results[1].metrics.to_json()
        )
        ladders = [
            [o.ladder for o in sorted(
                r.outcomes, key=lambda o: o.request.request_id
            )]
            for r in results
        ]
        assert ladders[0] == ladders[1]

    def test_no_oom_rate_means_no_oom_metrics(self, oom_schedule):
        m = ServingRuntime(oom_config(faults=None)).serve(oom_schedule).metrics
        assert m.oom_events == 0
        assert m.ladder_steps == 0
        assert m.oom_degraded == 0

    def test_memory_aware_admission_rejects_oversized_model(self, model):
        weights = model_weight_bytes(model, Precision.FP16)
        tiny = register_device(
            dataclasses.replace(
                get_device("rtx3090"),
                name="tiny-vram-test",
                dram_gib=0.5 * weights / float(1 << 30),
            )
        )
        runtime = ServingRuntime(oom_config(device=tiny.name))
        with pytest.raises(AdmissionError, match="weight footprint"):
            runtime.model(WORKLOAD)
