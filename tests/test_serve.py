"""Tests for the serving runtime: arrivals, batching, caches, scheduling,
admission control and the warm-vs-cold latency contract."""

import numpy as np
import pytest

from repro.serve import (
    BurstyArrivals,
    DynamicBatcher,
    InferenceRequest,
    KmapCache,
    KmapEntry,
    PoissonArrivals,
    PolicyCache,
    RequestQueue,
    RequestStatus,
    ServeConfig,
    ServingRuntime,
    generate_requests,
)
from repro.sparse.tensor import SparseTensor

WORKLOAD = "SK-M-0.5"
#: Tiny scenes keep the suite fast; simulated comparisons hold at any scale.
SCALE = 0.1


def make_request(i, arrival_ms, points_seed=0, workload=WORKLOAD,
                 deadline_ms=200.0):
    return InferenceRequest(
        request_id=i,
        workload_id=workload,
        stream_id=i % 2,
        frame_index=i // 2,
        scene_seed=points_seed,
        arrival_ms=arrival_ms,
        deadline_ms=deadline_ms,
    )


class TestArrivals:
    def test_poisson_deterministic_and_sorted(self):
        a = PoissonArrivals(rate_per_s=50, seed=3)
        t1, t2 = a.times_ms(100), a.times_ms(100)
        assert t1 == t2
        assert t1 == sorted(t1)

    def test_poisson_mean_rate(self):
        times = PoissonArrivals(rate_per_s=100, seed=0).times_ms(2000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(10.0, rel=0.1)  # 100/s = 10 ms

    def test_bursty_denser_in_burst_phase(self):
        a = BurstyArrivals(
            base_rate_per_s=20, burst_rate_per_s=400,
            period_ms=1000.0, burst_fraction=0.25, seed=1,
        )
        times = np.asarray(a.times_ms(800))
        phases = (times % 1000.0) / 1000.0
        in_burst = np.count_nonzero(phases < 0.25)
        # 25% of the time carries far more than 25% of the arrivals.
        assert in_burst > 0.5 * len(times)

    def test_generate_requests_streams_share_scene_seed(self):
        reqs = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=10, seed=0),
            count=12, num_streams=3,
        )
        assert len(reqs) == 12
        by_stream = {}
        for r in reqs:
            by_stream.setdefault(r.stream_id, set()).add(r.scene_seed)
        assert set(by_stream) == {0, 1, 2}
        for seeds in by_stream.values():
            assert len(seeds) == 1  # one geometry per stream
        assert [r.request_id for r in reqs] == list(range(12))

    def test_generate_requests_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            generate_requests(WORKLOAD, PoissonArrivals(10), count=0)
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_per_s=-1)


class TestCaches:
    def test_policy_cache_hit_miss_accounting(self):
        cache = PolicyCache()
        key = PolicyCache.make_key("SK-M-0.5", "RTX 3090", "fp16")
        assert cache.get(key) is None
        from repro.nn.context import GroupPolicy

        cache.put(key, GroupPolicy({}))
        assert cache.get(key) is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_kmap_cache_lru_eviction(self):
        cache = KmapCache(capacity=2)
        sample = SparseTensor(
            np.zeros((1, 4), np.int32), np.zeros((1, 1), np.float32)
        )
        for key in ("a", "b", "c"):
            cache.put((key,), KmapEntry(sample=sample, charge_keys=frozenset()))
        assert cache.evictions == 1
        assert ("a",) not in cache and ("c",) in cache
        # Touching "b" makes "c" the LRU victim.
        assert cache.get(("b",)) is not None
        cache.put(("d",), KmapEntry(sample=sample, charge_keys=frozenset()))
        assert ("c",) not in cache and ("b",) in cache
        assert cache.get(("c",)) is None  # evicted -> miss
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)


class TestBatcher:
    def test_queue_sheds_when_full(self):
        queue = RequestQueue(max_depth=2)
        assert queue.admit(make_request(0, 0.0))
        assert queue.admit(make_request(1, 1.0))
        assert not queue.admit(make_request(2, 2.0))
        assert queue.shed_count == 1 and len(queue) == 2

    def test_batch_respects_point_budget(self):
        queue = RequestQueue(max_depth=8)
        for i in range(4):
            queue.admit(make_request(i, float(i)))
        batcher = DynamicBatcher(
            point_budget=250, max_batch_requests=8, window_ms=5.0,
            scene_points=lambda r: 100,
        )
        batch = batcher.form_batch(queue, now_ms=10.0)
        assert len(batch) == 2  # 3rd request would exceed 250 points
        assert len(queue) == 2

    def test_batch_respects_request_cap_and_single_oversized(self):
        queue = RequestQueue(max_depth=8)
        for i in range(5):
            queue.admit(make_request(i, float(i)))
        batcher = DynamicBatcher(
            point_budget=10**9, max_batch_requests=3, window_ms=5.0,
            scene_points=lambda r: 100,
        )
        assert len(batcher.form_batch(queue, 10.0)) == 3
        # A single scene above the budget still forms a batch of one.
        big = DynamicBatcher(point_budget=10, scene_points=lambda r: 999)
        assert len(big.form_batch(queue, 10.0)) == 1

    def test_batch_never_mixes_workloads(self):
        queue = RequestQueue(max_depth=8)
        queue.admit(make_request(0, 0.0))
        queue.admit(make_request(1, 1.0, workload="WM-C-1f"))
        queue.admit(make_request(2, 2.0))
        batcher = DynamicBatcher(scene_points=lambda r: 1)
        batch = batcher.form_batch(queue, 20.0)
        assert [r.request_id for r in batch] == [0, 2]
        assert [r.request_id for r in queue.peek()] == [1]

    def test_ready_waits_for_window_when_arrivals_pending(self):
        queue = RequestQueue(max_depth=8)
        queue.admit(make_request(0, 0.0))
        batcher = DynamicBatcher(window_ms=10.0, scene_points=lambda r: 1)
        assert not batcher.ready(queue, now_ms=5.0, more_arrivals=True)
        assert batcher.ready(queue, now_ms=10.0, more_arrivals=True)
        assert batcher.ready(queue, now_ms=5.0, more_arrivals=False)
        assert batcher.next_decision_ms(queue) == pytest.approx(10.0)


@pytest.fixture(scope="module")
def small_schedule():
    return generate_requests(
        WORKLOAD, PoissonArrivals(rate_per_s=40, seed=0),
        count=10, num_streams=2, deadline_ms=300.0,
    )


def small_config(**overrides):
    base = dict(
        device="rtx3090", precision="fp16", scene_scale=SCALE,
        queue_depth=16,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestRuntime:
    def test_serves_all_requests_deterministically(self, small_schedule):
        results = [
            ServingRuntime(small_config()).serve(small_schedule)
            for _ in range(2)
        ]
        for result in results:
            assert result.metrics.completed == len(small_schedule)
            assert result.metrics.shed == 0
            assert result.metrics.latency_p50_ms > 0
            for outcome in result.outcomes:
                assert outcome.completed
                assert outcome.finish_ms > outcome.start_ms
                assert outcome.start_ms >= outcome.request.arrival_ms
        assert results[0].metrics.to_json() == results[1].metrics.to_json()

    def test_kmap_cache_reuses_stream_geometry(self, small_schedule):
        result = ServingRuntime(small_config()).serve(small_schedule)
        # 2 streams -> 2 cold scenes, the other 8 requests hit.
        hits = sum(1 for o in result.outcomes if o.kmap_hit)
        assert hits == len(small_schedule) - 2
        assert result.metrics.kmap_hit_rate == pytest.approx(0.8)

    def test_kmap_hits_skip_mapping_charges(self, small_schedule):
        result = ServingRuntime(small_config()).serve(small_schedule)
        cold = [o for o in result.outcomes
                if not o.kmap_hit and o.batch_size == 1]
        warm = [o for o in result.outcomes
                if o.kmap_hit and o.batch_size == 1]
        if cold and warm:  # batching may group everything; guard, not skip
            assert min(o.service_ms for o in warm) < max(
                o.service_ms for o in cold
            )

    def test_cold_runs_degrade_warm_runs_do_not(self, small_schedule):
        cold = ServingRuntime(small_config()).serve(small_schedule)
        assert cold.metrics.degraded == len(small_schedule)
        assert all(
            o.status is RequestStatus.DEGRADED for o in cold.outcomes
        )
        runtime = ServingRuntime(small_config())
        runtime.warm_policy(WORKLOAD)
        warm = runtime.serve(small_schedule)
        assert warm.metrics.degraded == 0
        assert warm.metrics.policy_hit_rate == 1.0

    def test_warm_policy_p50_strictly_below_cold(self, small_schedule):
        cold = ServingRuntime(small_config()).serve(small_schedule)
        runtime = ServingRuntime(small_config())
        runtime.warm_policy(WORKLOAD)
        warm = runtime.serve(small_schedule)
        assert warm.metrics.latency_p50_ms < cold.metrics.latency_p50_ms

    def test_overload_sheds_and_bounds_queue(self):
        requests = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=2000, seed=1),
            count=40, num_streams=2, deadline_ms=100.0,
        )
        config = small_config(queue_depth=8)
        result = ServingRuntime(config).serve(requests)
        assert result.metrics.shed > 0
        assert result.metrics.queue_depth_max <= config.queue_depth
        assert result.metrics.shed + result.metrics.completed == 40

    def test_more_replicas_cut_tail_latency_under_load(self):
        requests = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=2000, seed=2),
            count=24, num_streams=2, deadline_ms=500.0,
        )
        one = ServingRuntime(
            small_config(queue_depth=64, replicas=1)
        ).serve(requests)
        four = ServingRuntime(
            small_config(queue_depth=64, replicas=4)
        ).serve(requests)
        assert four.metrics.latency_p95_ms < one.metrics.latency_p95_ms
        assert four.metrics.shed == 0

    def test_inline_autotune_on_miss(self, small_schedule):
        config = small_config(autotune_on_miss=True, tune_penalty_ms=50.0)
        result = ServingRuntime(config).serve(small_schedule)
        # The first batch tunes inline (not degraded); later batches hit.
        assert result.metrics.degraded == 0
        assert result.metrics.policy_hit_rate > 0
        assert "host/inline_tune" in result.metrics.stage_us_per_request

    def test_report_renders(self, small_schedule):
        result = ServingRuntime(small_config()).serve(small_schedule)
        text = result.describe()
        assert "throughput" in text and "latency p50" in text
        assert "stage" in text
        payload = result.metrics.to_json()
        import json

        data = json.loads(payload)
        assert data["completed"] == len(small_schedule)
        assert "latency_p99_ms" in data

    def test_empty_schedule_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ServingRuntime(small_config()).serve([])


class TestLintAdmission:
    def test_broken_model_rejected_at_admission(self):
        from repro.errors import AdmissionError
        from tests.broken_models import BrokenSkipNet

        runtime = ServingRuntime(small_config())
        with pytest.raises(AdmissionError, match="stride-mismatch"):
            runtime.register_model("broken", BrokenSkipNet(), in_channels=4)
        assert "broken" not in runtime._models

    def test_admission_can_be_disabled(self):
        from tests.broken_models import BrokenSkipNet

        runtime = ServingRuntime(small_config(lint_admission=False))
        model = runtime.register_model(
            "broken", BrokenSkipNet(), in_channels=4
        )
        assert runtime.model("broken") is model

    def test_bundled_workload_admitted(self, small_schedule):
        # Admission runs on the lazy build path too; the bundled MinkUNet
        # must clear it and serving must proceed normally.
        result = ServingRuntime(small_config()).serve(small_schedule)
        assert result.metrics.completed == len(small_schedule)
