"""Serving-integration tests for the online autotuner.

The acceptance criterion: serve-bench with a pre-warmed tuning DB shows
measurably lower time-to-first-tuned-config than a cold start, and the
amortization is visible in the metrics.
"""

import pytest

from repro.serve import ServeConfig, ServingRuntime
from repro.serve.arrivals import PoissonArrivals, generate_requests

WORKLOAD = "SK-M-0.5"
SCALE = 0.1


def requests(count=16, seed=3):
    return generate_requests(
        WORKLOAD,
        PoissonArrivals(rate_per_s=40, seed=seed),
        count=count,
    )


def serve_once(db_path, **overrides):
    config = ServeConfig(
        device="3090",
        scene_scale=SCALE,
        tuning_db=str(db_path),
        **overrides,
    )
    runtime = ServingRuntime(config)
    result = runtime.serve(requests())
    return runtime, result.metrics


class TestConfig:
    def test_negative_background_tune_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ServeConfig(background_tune_ms=-1.0)

    def test_empty_tuning_db_path_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ServeConfig(tuning_db="  ")

    def test_no_tuning_db_means_no_tuner(self):
        runtime = ServingRuntime(ServeConfig(scene_scale=SCALE))
        assert runtime.tuning_db is None
        assert runtime.online_tuner is None
        with pytest.raises(Exception):
            runtime.save_tuning_db()


class TestColdStart:
    def test_cold_run_background_tunes_then_hits(self, tmp_path):
        runtime, metrics = serve_once(tmp_path / "db.json")
        assert metrics.tuning_db_misses > 0
        assert metrics.background_tunes >= 1
        # The background tune completed on the virtual clock and later
        # batches were served tuned.
        assert metrics.time_to_first_tuned_ms > 0
        assert len(runtime.tuning_db) > 0

    def test_cold_run_persists_learned_entries(self, tmp_path):
        path = tmp_path / "db.json"
        runtime, _ = serve_once(path)
        runtime.save_tuning_db()
        from repro.autotune import TuningDatabase

        saved = TuningDatabase.load(path)
        assert len(saved) == len(runtime.tuning_db)


class TestWarmAmortization:
    def test_warm_db_lowers_time_to_first_tuned(self, tmp_path):
        path = tmp_path / "db.json"
        cold_runtime, cold = serve_once(path)
        cold_runtime.save_tuning_db()
        _, warm = serve_once(path)
        assert warm.tuning_db_misses == 0
        assert warm.background_tunes == 0
        assert warm.time_to_first_tuned_ms < cold.time_to_first_tuned_ms

    def test_warm_run_never_degrades(self, tmp_path):
        path = tmp_path / "db.json"
        cold_runtime, cold = serve_once(path)
        cold_runtime.save_tuning_db()
        _, warm = serve_once(path)
        assert warm.degraded == 0
        assert warm.degraded <= cold.degraded

    def test_metrics_render_amortization(self, tmp_path):
        _, metrics = serve_once(tmp_path / "db.json")
        table = metrics.to_table()
        assert "tuning db hits / misses" in table
        assert "time to first tuned" in table


class TestDeterminism:
    def test_two_cold_runs_byte_identical_dbs(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.json"
            runtime, _ = serve_once(path)
            runtime.save_tuning_db()
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_metrics_deterministic_given_db_state(self, tmp_path):
        _, first = serve_once(tmp_path / "a.json")
        _, second = serve_once(tmp_path / "b.json")
        assert first.to_json() == second.to_json()
