"""Tests for the fault-tolerant multi-replica serving cluster: load
balancers, fault injection, retries/backoff, timeouts, hedging, and the
byte-identical determinism of faulty runs (the golden contract)."""

import json

import pytest

from repro.errors import ConfigError
from repro.hw.specs import get_device
from repro.serve import (
    BALANCERS,
    DeviceReplica,
    FaultInjector,
    FaultPlan,
    InferenceRequest,
    KmapCache,
    PoissonArrivals,
    RequestStatus,
    ServeConfig,
    ServingRuntime,
    generate_requests,
    get_balancer,
)

WORKLOAD = "SK-M-0.5"
HEAVY_WORKLOAD = "SK-M-1.0"
SCALE = 0.1


def make_replica(index, busy_ms=0.0, inflight=0, free_at_ms=0.0, cache=None):
    return DeviceReplica(
        index=index,
        spec=get_device("rtx3090"),
        busy_ms=busy_ms,
        inflight=inflight,
        free_at_ms=free_at_ms,
        kmap_cache=cache,
    )


def make_request(i, arrival_ms=0.0, workload=WORKLOAD, stream=0,
                 deadline_ms=500.0):
    return InferenceRequest(
        request_id=i,
        workload_id=workload,
        stream_id=stream,
        frame_index=i,
        scene_seed=stream,
        arrival_ms=arrival_ms,
        deadline_ms=deadline_ms,
    )


def cluster_config(**overrides):
    base = dict(
        device="rtx3090", precision="fp16", scene_scale=SCALE,
        queue_depth=64,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestBalancers:
    def test_registry_and_unknown_name(self):
        assert set(BALANCERS) == {
            "round_robin", "least_loaded", "jsq", "cache_affinity"
        }
        with pytest.raises(ConfigError, match="least_loaded"):
            get_balancer("fastest_finger")
        with pytest.raises(ConfigError, match="known balancers"):
            ServeConfig(balancer="nope")

    def test_round_robin_cycles_indices(self):
        balancer = get_balancer("round_robin")
        replicas = [make_replica(i) for i in range(3)]
        picks = [balancer.select(replicas, [], 0.0).index for _ in range(5)]
        assert picks == [0, 1, 2, 0, 1]

    def test_round_robin_skips_missing_candidates(self):
        balancer = get_balancer("round_robin")
        replicas = [make_replica(i) for i in range(3)]
        assert balancer.select(replicas, [], 0.0).index == 0
        # Replica 1 unavailable: the cursor moves on to 2, then wraps.
        assert balancer.select([replicas[0], replicas[2]], [], 0.0).index == 2
        assert balancer.select(replicas, [], 0.0).index == 0

    def test_least_loaded_prefers_least_outstanding_then_busy(self):
        balancer = get_balancer("least_loaded")
        idle_fresh = make_replica(0, busy_ms=5.0)
        idle_veteran = make_replica(1, busy_ms=50.0)
        backed_up = make_replica(2, free_at_ms=40.0, inflight=1)
        chosen = balancer.select(
            [backed_up, idle_veteran, idle_fresh], [], now_ms=10.0
        )
        assert chosen.index == 0  # no outstanding work, least lifetime busy

    def test_jsq_prefers_fewest_inflight(self):
        balancer = get_balancer("jsq")
        deep = make_replica(0, inflight=2, free_at_ms=5.0)
        shallow = make_replica(1, inflight=1, free_at_ms=90.0)
        assert balancer.select([deep, shallow], [], 0.0).index == 1

    def test_cache_affinity_steers_to_warm_replica(self):
        from repro.serve import KmapEntry
        from repro.sparse.tensor import SparseTensor
        import numpy as np

        balancer = get_balancer("cache_affinity")
        warm_cache = KmapCache(capacity=4)
        sample = SparseTensor(
            np.zeros((1, 4), np.int32), np.zeros((1, 1), np.float32)
        )
        request = make_request(0, stream=7)
        warm_cache.put(
            request.scene_key,
            KmapEntry(sample=sample, charge_keys=frozenset()),
        )
        cold = make_replica(0, cache=KmapCache(capacity=4))
        warm = make_replica(1, cache=warm_cache)
        assert balancer.select([cold, warm], [request], 0.0).index == 1
        # Nobody warm for an unseen stream: least-loaded order wins.
        other = make_request(1, stream=9)
        assert balancer.select([cold, warm], [other], 0.0).index == 0

    def test_affinity_score_does_not_perturb_hit_accounting(self):
        cache = KmapCache(capacity=2)
        assert ("x",) not in cache
        assert cache.hits == 0 and cache.misses == 0


class TestFaultModel:
    def test_parse_spec(self):
        plan = FaultPlan.parse("stall=2, fail=0.1, skew=3", seed=7)
        assert plan.stall_rate_per_s == 2.0
        assert plan.fail_rate == 0.1
        assert plan.skew_factor == 3.0
        assert plan.seed == 7
        assert plan.active

    def test_parse_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ConfigError, match="unknown fault key"):
            FaultPlan.parse("explode=1")
        with pytest.raises(ConfigError, match="bad fault value"):
            FaultPlan.parse("fail=lots")
        with pytest.raises(ConfigError, match="key=value"):
            FaultPlan.parse("stall")
        with pytest.raises(ConfigError):
            FaultPlan(fail_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(skew_factor=0.5)

    def test_skew_defaults_to_last_replica(self):
        injector = FaultInjector(FaultPlan.parse("skew=2"), replicas=3)
        assert injector.slow_factor(0) == 1.0
        assert injector.slow_factor(1) == 1.0
        assert injector.slow_factor(2) == 2.0
        pinned = FaultInjector(
            FaultPlan.parse("skew=2,skew_replica=0"), replicas=3
        )
        assert pinned.slow_factor(0) == 2.0 and pinned.slow_factor(2) == 1.0

    def test_skew_replica_out_of_range_rejected(self):
        with pytest.raises(ConfigError, match="out of range"):
            FaultInjector(
                FaultPlan.parse("skew=2,skew_replica=5"), replicas=2
            )

    def test_batch_failures_deterministic_and_order_free(self):
        plan = FaultPlan.parse("fail=0.3", seed=1)
        a = FaultInjector(plan, replicas=1)
        b = FaultInjector(plan, replicas=1)
        draws_a = [a.batch_fails(i) for i in range(50)]
        draws_b = [b.batch_fails(i) for i in reversed(range(50))]
        assert draws_a == draws_b[::-1]
        assert any(draws_a) and not all(draws_a)
        assert a.batch_failures == sum(draws_a)

    def test_stall_windows_deterministic(self):
        plan = FaultPlan.parse("stall=10,stall_ms=20", seed=3)
        a = FaultInjector(plan, replicas=2)
        b = FaultInjector(plan, replicas=2)
        probes = [float(t) for t in range(0, 2000, 50)]
        trace_a = [(a.stalled_until(0, t), a.stalled_until(1, t))
                   for t in probes]
        trace_b = [(b.stalled_until(0, t), b.stalled_until(1, t))
                   for t in probes]
        assert trace_a == trace_b
        # Replicas get independent streams; at 10 windows/s some probe
        # lands inside a window.
        assert any(u is not None for u, _ in trace_a)
        assert trace_a != [(v, u) for u, v in trace_a]
        assert a.stall_windows > 0
        assert a.stalls_for(0) + a.stalls_for(1) == a.stall_windows


@pytest.fixture(scope="module")
def faulty_schedule():
    return generate_requests(
        WORKLOAD, PoissonArrivals(rate_per_s=150, seed=4),
        count=16, num_streams=3, deadline_ms=500.0,
    )


class TestFaultyServing:
    def test_retries_recover_all_requests(self, faulty_schedule):
        config = cluster_config(
            replicas=2,
            faults=FaultPlan.parse("fail=0.3", seed=2),
            max_retries=4,
            retry_backoff_ms=2.0,
        )
        result = ServingRuntime(config).serve(faulty_schedule)
        m = result.metrics
        assert m.shed == 0 and m.failed == 0 and m.timed_out == 0
        assert m.completed == len(faulty_schedule)
        assert m.batch_failures > 0
        assert m.retries > 0
        retried = [o for o in result.outcomes if o.attempts > 1]
        assert retried
        for outcome in retried:
            assert outcome.completed
            assert outcome.finish_ms > outcome.request.arrival_ms

    def test_exhausted_retries_fail_requests(self, faulty_schedule):
        config = cluster_config(
            replicas=2,
            faults=FaultPlan.parse("fail=0.3", seed=2),
            max_retries=0,
        )
        m = ServingRuntime(config).serve(faulty_schedule).metrics
        assert m.failed > 0
        assert m.failed + m.completed + m.shed == m.requests
        assert m.retries == 0

    def test_backoff_spaces_out_retries(self, faulty_schedule):
        slow_backoff = cluster_config(
            replicas=2,
            faults=FaultPlan.parse("fail=0.3", seed=2),
            max_retries=4,
            retry_backoff_ms=200.0,
        )
        fast_backoff = dataclasses_replace(slow_backoff, retry_backoff_ms=1.0)
        slow = ServingRuntime(slow_backoff).serve(faulty_schedule).metrics
        fast = ServingRuntime(fast_backoff).serve(faulty_schedule).metrics
        assert slow.retries > 0 and fast.retries > 0
        assert slow.latency_p99_ms > fast.latency_p99_ms

    def test_stalled_cluster_drains_and_recovers(self):
        requests = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=100, seed=5),
            count=12, num_streams=2, deadline_ms=1000.0,
        )
        config = cluster_config(
            replicas=2,
            faults=FaultPlan.parse("stall=40,stall_ms=30", seed=1),
        )
        result = ServingRuntime(config).serve(requests)
        m = result.metrics
        assert m.completed + m.shed == len(requests)
        assert m.replica_stalls > 0
        healthy = ServingRuntime(cluster_config(replicas=2)).serve(requests)
        assert m.makespan_ms >= healthy.metrics.makespan_ms

    def test_timeout_drops_stale_queued_requests(self):
        requests = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=3000, seed=6),
            count=24, num_streams=2, deadline_ms=1000.0,
        )
        config = cluster_config(queue_depth=64, timeout_ms=15.0)
        result = ServingRuntime(config).serve(requests)
        m = result.metrics
        assert m.timed_out > 0
        assert m.timed_out + m.completed + m.shed == m.requests
        for outcome in result.outcomes:
            if outcome.status is RequestStatus.TIMED_OUT:
                assert outcome.start_ms is None and outcome.finish_ms is None

    def test_hedging_duplicates_slow_batches_and_cuts_tail(self):
        requests = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=60, seed=7),
            count=16, num_streams=2, deadline_ms=1000.0,
        )
        skew = FaultPlan.parse("skew=4,skew_replica=0", seed=0)
        base = cluster_config(
            replicas=2, balancer="round_robin", faults=skew,
        )
        hedged_config = dataclasses_replace(base, hedge_ms=1.0)
        plain = ServingRuntime(base).serve(requests).metrics
        hedged = ServingRuntime(hedged_config).serve(requests).metrics
        assert hedged.hedges > 0
        assert hedged.hedge_wins > 0
        assert hedged.latency_p99_ms < plain.latency_p99_ms
        assert hedged.completed == plain.completed == len(requests)


class TestBalancedScheduling:
    def test_least_loaded_beats_round_robin_on_skewed_scene_sizes(self):
        # Alternating heavy/light scenes; round-robin blindly stacks the
        # heavy ones onto one replica, least-loaded levels the work.  This
        # is the regression test for the old hardcoded index-order
        # selection (which behaved like round-robin).
        requests = [
            make_request(
                i,
                arrival_ms=0.0,
                workload=HEAVY_WORKLOAD if i % 2 == 0 else WORKLOAD,
                stream=i % 2,
            )
            for i in range(8)
        ]
        def run(balancer):
            config = cluster_config(
                replicas=2,
                balancer=balancer,
                replica_queue_depth=2,
                max_batch_requests=1,
                batch_window_ms=0.0,
            )
            return ServingRuntime(config).serve(requests).metrics

        rr = run("round_robin")
        ll = run("least_loaded")
        assert ll.latency_p99_ms < rr.latency_p99_ms

        def busy_spread(metrics):
            busy = [r["busy_ms"] for r in metrics.per_replica]
            return max(busy) - min(busy)

        assert busy_spread(ll) < busy_spread(rr)

    def test_cache_affinity_partitions_streams(self):
        # 4 streams over 3 replicas with room for only 2 warm scenes per
        # replica: round-robin routing thrashes every cache, affinity
        # pins each stream to one replica and keeps it warm.
        requests = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=25, seed=8),
            count=24, num_streams=4, deadline_ms=1000.0,
        )
        def run(balancer):
            config = cluster_config(
                replicas=3,
                balancer=balancer,
                kmap_cache_size=2,
                max_batch_requests=1,
            )
            return ServingRuntime(config).serve(requests).metrics

        rr = run("round_robin")
        affinity = run("cache_affinity")
        assert affinity.kmap_hit_rate > rr.kmap_hit_rate
        assert affinity.latency_p99_ms < rr.latency_p99_ms

    def test_jsq_spreads_inflight_batches(self):
        requests = generate_requests(
            WORKLOAD, PoissonArrivals(rate_per_s=400, seed=9),
            count=16, num_streams=2, deadline_ms=1000.0,
        )
        config = cluster_config(
            replicas=3, balancer="jsq", replica_queue_depth=2,
            max_batch_requests=2,
        )
        m = ServingRuntime(config).serve(requests).metrics
        assert m.completed == len(requests)
        busy = [r["batches"] for r in m.per_replica]
        assert max(busy) - min(busy) <= 2  # no replica starves

    def test_cluster_table_renders_per_replica_rows(self, faulty_schedule):
        config = cluster_config(replicas=2, balancer="least_loaded")
        result = ServingRuntime(config).serve(faulty_schedule)
        table = result.metrics.cluster_table()
        assert "cluster summary (least_loaded balancer)" in table
        assert len(result.metrics.per_replica) == 2
        text = result.describe()
        assert "cluster summary" in text and "retries" in text


class TestGoldenDeterminism:
    def _serve_bench_json(self, tmp_path, name):
        from repro.cli import main

        out = tmp_path / name
        code = main([
            "serve-bench", "--device", "rtx3090", "--workload", "sk-m-0.5x",
            "--requests", "12", "--scale", "0.1", "--rate", "150",
            "--replicas", "2", "--balancer", "least_loaded",
            "--faults", "fail=0.25,skew=2", "--retries", "3",
            "--hedge-ms", "30", "--seed", "11",
            "--json", str(out),
        ])
        assert code == 0
        return out.read_bytes()

    def test_faulty_serve_bench_is_byte_identical(self, tmp_path):
        first = self._serve_bench_json(tmp_path, "run1.json")
        second = self._serve_bench_json(tmp_path, "run2.json")
        assert first == second
        payload = json.loads(first)
        assert payload["batch_failures"] > 0
        assert payload["retries"] == json.loads(second)["retries"]
        assert payload["failed"] == 0  # retries absorb every injected fault
        assert payload["completed"] + payload["shed"] == payload["requests"]

    def test_clean_and_faulty_runs_share_accounting(self, faulty_schedule):
        config = cluster_config(
            replicas=2,
            faults=FaultPlan.parse("fail=0.3", seed=2),
            max_retries=4,
        )
        a = ServingRuntime(config).serve(faulty_schedule)
        b = ServingRuntime(config).serve(faulty_schedule)
        assert a.metrics.to_json() == b.metrics.to_json()
        for x, y in zip(a.outcomes, b.outcomes):
            assert x.attempts == y.attempts
            assert x.hedged == y.hedged
            assert x.replica == y.replica


class TestCliFlags:
    def test_unknown_balancer_exits_2_with_choices(self, capsys):
        from repro.cli import main

        assert main(["serve-bench", "--balancer", "random"]) == 2
        err = capsys.readouterr().err
        assert "unknown balancer" in err and "cache_affinity" in err

    def test_bad_fault_spec_exits_2(self, capsys):
        from repro.cli import main

        assert main(["serve-bench", "--faults", "explode=1"]) == 2
        assert "unknown fault key" in capsys.readouterr().err


def dataclasses_replace(config, **changes):
    import dataclasses

    return dataclasses.replace(config, **changes)
