"""JSON round-trip and schema-stability tests for ServingMetrics.

The metrics JSON is the machine-readable contract of every serving run
(``serve-bench --json``, the CI determinism smoke, the benchmark
regression gate all consume it).  The golden snapshot in
``tests/golden/serving_metrics_schema.json`` pins the field set and the
table column sets: adding a field is fine (regenerate the snapshot with
the script in this file's docstring below), but renaming or dropping one
silently breaks downstream consumers and must fail loudly here.

Regenerate after an intentional schema change::

    PYTHONPATH=src python -c "
    import dataclasses, json
    from repro.serve.metrics import ServingMetrics
    path = 'tests/golden/serving_metrics_schema.json'
    schema = json.load(open(path))
    schema['fields'] = sorted(
        f.name for f in dataclasses.fields(ServingMetrics))
    json.dump(schema, open(path, 'w'), indent=2, sort_keys=True)"
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.serve import (
    FaultPlan,
    PoissonArrivals,
    ServeConfig,
    ServingMetrics,
    ServingRuntime,
    generate_requests,
    parse_tenants,
)

GOLDEN = Path(__file__).parent / "golden" / "serving_metrics_schema.json"


@pytest.fixture(scope="module")
def served_metrics():
    """Metrics of one small multi-tenant faulty run (real populated rows)."""
    tenants = parse_tenants("gold:prio=0,share=2;free:prio=1,share=1")
    config = ServeConfig(
        device="rtx3090", precision="fp16", scene_scale=0.1,
        replicas=2, tenants=tenants, slo_ms=400.0,
        faults=FaultPlan(fail_rate=0.2, seed=1), max_retries=2,
        breaker_failures=2,
    )
    requests = generate_requests(
        "SK-M-0.5", PoissonArrivals(rate_per_s=200, seed=1), count=24,
    )
    return ServingRuntime(config).serve(requests).metrics


class TestRoundTrip:
    def test_served_run_roundtrips_exactly(self, served_metrics):
        text = served_metrics.to_json()
        again = ServingMetrics.from_json(text)
        assert again == served_metrics
        # And the round-trip is a fixed point byte-wise.
        assert again.to_json() == text

    def test_unknown_field_rejected(self, served_metrics):
        payload = json.loads(served_metrics.to_json())
        payload["zz_new_metric"] = 1
        with pytest.raises(ValueError, match="zz_new_metric"):
            ServingMetrics.from_json(json.dumps(payload))

    def test_json_is_sorted_and_native(self, served_metrics):
        payload = json.loads(served_metrics.to_json())
        assert list(payload) == sorted(payload)


class TestGoldenSchema:
    def golden(self):
        return json.loads(GOLDEN.read_text())

    def test_field_set_matches_snapshot(self):
        fields = sorted(f.name for f in dataclasses.fields(ServingMetrics))
        assert fields == self.golden()["fields"], (
            "ServingMetrics fields changed; if intentional, regenerate "
            f"{GOLDEN} (see module docstring)"
        )

    def test_table_columns_match_snapshot(self, served_metrics):
        golden = self.golden()
        cluster_header = served_metrics.cluster_table().splitlines()[1]
        for column in golden["cluster_table_columns"]:
            assert column in cluster_header
        tenant_header = served_metrics.tenant_table().splitlines()[1]
        for column in golden["tenant_table_columns"]:
            assert column in tenant_header

    def test_tenant_row_keys_match_snapshot(self, served_metrics):
        assert served_metrics.per_tenant, "fixture run produced no tenants"
        for row in served_metrics.per_tenant:
            assert sorted(row) == self.golden()["tenant_row_keys"]

    def test_tenant_rows_sorted_by_priority(self, served_metrics):
        priorities = [row["priority"] for row in served_metrics.per_tenant]
        assert priorities == sorted(priorities)
