"""Overload-robustness tests: tenant quotas, priority shedding, retry
budgets, circuit breakers, the SLO-driven autoscaler, the batch-execution
memo, and the determinism of flash-crowd runs.

The counterfactual test at the bottom is the PR's acceptance contract:
the same flash-crowd trace must measurably violate the SLO when the
robustness mechanisms (priority shedding + autoscaler) are turned off.
"""

import pytest

from repro.serve import (
    AutoscalePolicy,
    Autoscaler,
    BreakerState,
    CircuitBreaker,
    FaultPlan,
    PoissonArrivals,
    RequestStatus,
    ServeConfig,
    ServingRuntime,
    generate_requests,
    generate_traffic_requests,
    parse_tenants,
    parse_traffic,
)

SCALE = 0.1
WORKLOAD = "SK-M-0.5"


def overload_requests(count=300, seed=3, peak=300.0, tenants=None,
                      deadline_ms=400.0):
    trace = parse_traffic(f"flash:base=30,peak={peak}", seed=seed)
    roster = tenants if tenants is not None else parse_tenants(
        f"gold:prio=0,share=3,mix={WORKLOAD},streams=2;"
        f"bronze:prio=2,share=1,mix={WORKLOAD},streams=2"
    )
    return roster, generate_traffic_requests(
        trace, count=count, tenants=roster, seed=seed,
        deadline_ms=deadline_ms,
    )


def overload_config(tenants, **overrides):
    base = dict(
        device="rtx3090", precision="fp16", scene_scale=SCALE,
        replicas=2, tenants=tenants, queue_depth=16, slo_ms=350.0,
        max_retries=2,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_and_probes_closed(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ms=100.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allows(50.0)  # still cooling down
        assert breaker.allows(150.0)  # half-open: one probe allowed
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.on_dispatch()
        assert not breaker.allows(151.0)  # probe in flight: nobody else
        breaker.record_success(200.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.closes == 1

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=50.0)
        breaker.record_failure(0.0)
        assert breaker.allows(60.0)
        breaker.on_dispatch()
        breaker.record_failure(70.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows(100.0)  # new cooldown from the re-open

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ms=50.0)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_runtime_opens_breakers_under_persistent_failures(self):
        tenants, requests = overload_requests(count=120)
        config = overload_config(
            tenants,
            breaker_failures=2,
            faults=FaultPlan(fail_rate=0.6, seed=5),
            max_retries=3,
        )
        metrics = ServingRuntime(config).serve(requests).metrics
        assert metrics.breaker_opens > 0
        assert metrics.breaker_probes > 0
        # Per-replica accounting surfaces in the cluster rows.
        assert sum(
            int(r.get("breaker_opens", 0)) for r in metrics.per_replica
        ) == metrics.breaker_opens


class TestAutoscaler:
    def test_scale_up_on_slo_miss_and_cooldown(self):
        policy = AutoscalePolicy(
            slo_ms=100.0, window_ms=1000.0, cooldown_ms=500.0, max_replicas=4
        )
        scaler = Autoscaler(policy)
        for i in range(30):
            scaler.observe(
                finish_ms=float(i * 10), latency_ms=300.0, priority=0,
                slo_missed=True,
            )
        assert scaler.decide(300.0, replicas=1, queue_depth=0,
                             utilization=0.9) == "up"
        # Cooldown: an immediate second tick holds.
        assert scaler.decide(400.0, replicas=2, queue_depth=0,
                             utilization=0.9) is None

    def test_queue_pressure_is_a_leading_signal(self):
        scaler = Autoscaler(AutoscalePolicy(slo_ms=100.0))
        assert scaler.decide(0.0, replicas=1, queue_depth=50,
                             utilization=0.2, batch_capacity=8) == "up"

    def test_scale_down_only_when_idle_and_healthy(self):
        policy = AutoscalePolicy(slo_ms=100.0, scale_down_util=0.5,
                                 cooldown_ms=0.0)
        scaler = Autoscaler(policy)
        for i in range(20):
            scaler.observe(float(i), 10.0, 0, False)
        assert scaler.decide(20.0, replicas=3, queue_depth=0,
                             utilization=0.1) == "down"
        assert scaler.decide(21.0, replicas=1, queue_depth=0,
                             utilization=0.0) is None  # at min_replicas

    def test_runtime_scales_up_under_flash_crowd(self):
        tenants, requests = overload_requests(count=260, peak=1500.0)
        config = overload_config(
            tenants,
            replicas=1,
            max_batch_requests=2,
            autoscale=AutoscalePolicy(
                slo_ms=150.0, min_replicas=1, max_replicas=4,
                interval_ms=50.0, window_ms=500.0, cooldown_ms=100.0,
                warmup_ms=50.0,
            ),
        )
        metrics = ServingRuntime(config).serve(requests).metrics
        assert metrics.scale_ups > 0
        assert metrics.replicas_peak > 1
        assert metrics.provisioned_ms > 0
        assert metrics.cost_per_million > 0

    def test_warmup_delays_new_replica(self):
        tenants, requests = overload_requests(count=150, peak=1500.0)
        config = overload_config(
            tenants,
            replicas=1,
            max_batch_requests=2,
            autoscale=AutoscalePolicy(
                slo_ms=150.0, min_replicas=1, max_replicas=2,
                interval_ms=50.0, window_ms=500.0, cooldown_ms=100.0,
                warmup_ms=100.0,
            ),
        )
        result = ServingRuntime(config).serve(requests)
        assert result.metrics.scale_ups > 0
        # The scaled-up replica (index 1) must not have started a batch
        # before its warmup elapsed.
        starts = [
            o.start_ms for o in result.outcomes
            if o.replica == 1 and o.start_ms is not None
        ]
        assert starts, "scaled-up replica never served"


class TestTenantIsolation:
    def test_quota_sheds_at_arrival(self):
        tenants, requests = overload_requests(
            count=200,
            tenants=parse_tenants(
                f"gold:prio=0,share=1,mix={WORKLOAD};"
                f"capped:prio=1,share=3,rps=5,burst=2,mix={WORKLOAD}"
            ),
        )
        metrics = ServingRuntime(
            overload_config(tenants)
        ).serve(requests).metrics
        assert metrics.quota_denied > 0
        capped = next(
            r for r in metrics.per_tenant if r["tenant"] == "capped"
        )
        assert capped["quota_denied"] == metrics.quota_denied
        gold = next(r for r in metrics.per_tenant if r["tenant"] == "gold")
        assert gold["quota_denied"] == 0

    def test_priority_shedding_protects_top_class(self):
        tenants, requests = overload_requests(count=300, peak=600.0)
        config = overload_config(tenants, queue_depth=8, replicas=1)
        metrics = ServingRuntime(config).serve(requests).metrics
        gold = next(r for r in metrics.per_tenant if r["tenant"] == "gold")
        bronze = next(
            r for r in metrics.per_tenant if r["tenant"] == "bronze"
        )
        assert metrics.shed > 0
        # Lowest-priority-first: bronze absorbs the shedding.
        assert bronze["shed"] > 0
        assert gold["shed"] * bronze["requests"] <= (
            bronze["shed"] * gold["requests"]
        )

    def test_retry_budget_caps_retry_storm(self):
        tenants, requests = overload_requests(count=150)
        storm = FaultPlan(fail_rate=0.5, seed=9)
        unbounded = ServingRuntime(overload_config(
            tenants, faults=storm, max_retries=3,
        )).serve(requests).metrics
        budgeted = ServingRuntime(overload_config(
            tenants, faults=storm, max_retries=3, retry_budget=0.05,
        )).serve(requests).metrics
        assert budgeted.retry_budget_exhausted > 0
        assert budgeted.retries < unbounded.retries
        # Budget-denied requests resolve FAILED with the flag set.
        assert budgeted.failed >= budgeted.retry_budget_exhausted


class TestBatchMemo:
    def test_memo_matches_unmemoized_metrics(self):
        tenants, requests = overload_requests(count=120)
        faults = FaultPlan(fail_rate=0.1, oom_rate=0.02, seed=4)

        def run(memo):
            return ServingRuntime(overload_config(
                tenants, faults=faults, batch_memo=memo,
            )).serve(requests).metrics

        with_memo, without = run(True), run(False)
        # Integer fields agree exactly; float fields to summation-order
        # precision (composition sums per-sample, the cold path sums the
        # shared trace).
        assert with_memo.completed == without.completed
        assert with_memo.failed == without.failed
        assert with_memo.shed == without.shed
        assert with_memo.retries == without.retries
        assert with_memo.oom_events == without.oom_events
        assert with_memo.batches == without.batches
        assert with_memo.kmap_hit_rate == pytest.approx(without.kmap_hit_rate)
        assert with_memo.latency_p99_ms == pytest.approx(
            without.latency_p99_ms, rel=1e-9
        )
        assert with_memo.makespan_ms == pytest.approx(
            without.makespan_ms, rel=1e-9
        )

    def test_memo_populates_and_reuses(self):
        tenants, requests = overload_requests(count=120)
        runtime = ServingRuntime(overload_config(tenants))
        runtime.serve(requests)
        assert runtime._batch_memo
        assert runtime._sample_memo
        # Far fewer sample simulations than batches served.
        assert len(runtime._sample_memo) < len(runtime._batch_memo) * 2


class TestCliSpecErrors:
    """Every malformed ``serve-bench`` spec exits 2 with a message that
    names the offending key and lists the valid ones — never a traceback."""

    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(["serve-bench", *argv])
        return code, capsys.readouterr().err

    def test_unknown_fault_key_lists_valid_keys(self, capsys):
        code, err = self._run(capsys, "--faults", "fail_rate=0.1")
        assert code == 2
        assert "unknown fault key" in err
        assert "'fail'" in err and "'oom'" in err and "'stall_ms'" in err

    def test_bad_fault_value_names_key(self, capsys):
        code, err = self._run(capsys, "--faults", "fail=lots")
        assert code == 2
        assert "bad fault value 'lots' for key 'fail'" in err

    def test_unknown_tenant_key_lists_valid_keys(self, capsys):
        code, err = self._run(capsys, "--tenants", "gold:quota=5")
        assert code == 2
        assert "unknown tenant key 'quota'" in err
        assert "'rps'" in err and "'prio'" in err and "'share'" in err

    def test_bad_tenant_value_names_tenant(self, capsys):
        code, err = self._run(capsys, "--tenants", "gold:prio=high")
        assert code == 2
        assert "bad tenant value 'high' for key 'prio'" in err
        assert "gold" in err

    def test_unknown_traffic_preset_lists_presets(self, capsys):
        code, err = self._run(capsys, "--traffic", "tsunami")
        assert code == 2
        assert "unknown traffic preset 'tsunami'" in err
        assert "flash" in err and "diurnal" in err and "steady" in err

    def test_nonpositive_traffic_value_exits_2(self, capsys):
        code, err = self._run(capsys, "--traffic", "flash:peak=-5")
        assert code == 2
        assert "must be positive" in err


class TestDeterminismAndCounterfactual:
    def test_flash_crowd_run_is_byte_identical(self):
        tenants, requests = overload_requests(count=200, peak=400.0)

        def run():
            config = overload_config(
                tenants,
                replicas=1,
                breaker_failures=3,
                faults=FaultPlan(fail_rate=0.1, oom_rate=0.01, seed=11),
                autoscale=AutoscalePolicy(
                    slo_ms=200.0, min_replicas=1, max_replicas=3,
                    interval_ms=50.0, window_ms=500.0, cooldown_ms=200.0,
                ),
            )
            return ServingRuntime(config).serve(requests).metrics.to_json()

        assert run() == run()

    def test_robustness_off_violates_slo(self):
        """The acceptance counterfactual: with the autoscaler and priority
        shedding disabled, the same flash crowd measurably degrades the
        top class; with them on, the top class holds its SLO."""
        tenants, requests = overload_requests(
            count=300, peak=1500.0, deadline_ms=5000.0,
        )

        def run(robust):
            config = overload_config(
                tenants,
                replicas=1,
                queue_depth=12,
                max_batch_requests=2,
                slo_ms=300.0,
                priority_shedding=robust,
                autoscale=AutoscalePolicy(
                    slo_ms=300.0, min_replicas=1, max_replicas=4,
                    interval_ms=50.0, window_ms=500.0, cooldown_ms=100.0,
                    warmup_ms=50.0,
                ) if robust else None,
            )
            metrics = ServingRuntime(config).serve(requests).metrics
            return metrics

        hardened = run(True)
        naive = run(False)
        assert hardened.scale_ups > 0
        assert hardened.slo_attainment_top > naive.slo_attainment_top
        assert naive.slo_attainment_top < 0.95
