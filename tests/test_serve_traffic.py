"""Tests for trace-driven traffic programs and multi-tenant request
generation (:mod:`repro.serve.traffic`) and the tenant admission
primitives (:mod:`repro.serve.admission`)."""

import pytest

from repro.errors import ConfigError
from repro.serve import (
    InferenceRequest,
    RetryBudget,
    TenantSpec,
    TokenBucket,
    TrafficSegment,
    TrafficTrace,
    generate_traffic_requests,
    parse_traffic,
    parse_tenants,
)
from repro.serve.admission import PriorityRequestQueue
from repro.serve.traffic import MIN_RATE_PER_S, TRAFFIC_PRESETS


def make_request(i, arrival_ms=0.0, priority=0, tenant="default",
                 deadline_ms=500.0):
    return InferenceRequest(
        request_id=i, workload_id="SK-M-0.5", stream_id=0, frame_index=i,
        scene_seed=0, arrival_ms=arrival_ms, deadline_ms=deadline_ms,
        tenant=tenant, priority=priority,
    )


class TestSegmentsAndTrace:
    def test_const_segment_rate(self):
        seg = TrafficSegment(duration_ms=100.0, start_rate=30.0)
        assert seg.rate_at(0.0) == seg.rate_at(99.0) == 30.0

    def test_linear_ramp_interpolates(self):
        seg = TrafficSegment(
            duration_ms=100.0, start_rate=10.0, end_rate=110.0, shape="linear"
        )
        assert seg.rate_at(0.0) == pytest.approx(10.0)
        assert seg.rate_at(50.0) == pytest.approx(60.0)
        assert seg.rate_at(100.0) == pytest.approx(110.0)

    def test_sine_eases_through_midpoint(self):
        seg = TrafficSegment(
            duration_ms=100.0, start_rate=10.0, end_rate=110.0, shape="sine"
        )
        assert seg.rate_at(0.0) == pytest.approx(10.0)
        assert seg.rate_at(50.0) == pytest.approx(60.0)
        assert seg.rate_at(100.0) == pytest.approx(110.0)
        # Ease-in: the first quarter is below the linear interpolant.
        assert seg.rate_at(25.0) < 35.0

    def test_segment_validation(self):
        with pytest.raises(ConfigError, match="duration"):
            TrafficSegment(duration_ms=0.0, start_rate=10.0)
        with pytest.raises(ConfigError, match="rate"):
            TrafficSegment(duration_ms=10.0, start_rate=0.0)
        with pytest.raises(ConfigError, match="shape"):
            TrafficSegment(duration_ms=10.0, start_rate=1.0, shape="square")

    def test_trace_cycles_over_period(self):
        trace = TrafficTrace(segments=(
            TrafficSegment(duration_ms=100.0, start_rate=10.0),
            TrafficSegment(duration_ms=100.0, start_rate=50.0),
        ))
        assert trace.period_ms == 200.0
        assert trace.rate_at(50.0) == 10.0
        assert trace.rate_at(150.0) == 50.0
        assert trace.rate_at(250.0) == 10.0  # second cycle

    def test_rate_never_zero(self):
        trace = parse_traffic("steady:rate=0.0001")
        assert trace.rate_at(0.0) >= MIN_RATE_PER_S

    def test_times_are_deterministic_and_monotone(self):
        trace = parse_traffic("flash", seed=3)
        a = trace.times_ms(200)
        b = parse_traffic("flash", seed=3).times_ms(200)
        assert a == b
        assert all(x < y for x, y in zip(a, b[1:]))
        assert parse_traffic("flash", seed=4).times_ms(200) != a

    def test_flash_crowd_concentrates_arrivals(self):
        # During the peak phase the arrival density must far exceed the
        # base phase: that is the whole point of a flash crowd.
        trace = parse_traffic(
            "flash:base=10,peak=200,warm=500,ramp=100,hold=1000", seed=0
        )
        times = [t for t in trace.times_ms(400) if t < trace.period_ms]
        warm = sum(1 for t in times if t < 500.0)
        hold = sum(1 for t in times if 600.0 <= t < 1600.0)
        assert hold > 5 * warm

    def test_mean_rate_between_extremes(self):
        trace = parse_traffic("diurnal:base=10,peak=60")
        assert 10.0 < trace.mean_rate_per_s() < 60.0


class TestParseTraffic:
    def test_presets_parse_with_defaults(self):
        for preset in TRAFFIC_PRESETS:
            assert parse_traffic(preset).period_ms > 0

    def test_override_keys(self):
        trace = parse_traffic("steady:rate=77,period=500")
        assert trace.rate_at(0.0) == 77.0
        assert trace.period_ms == 500.0

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(ConfigError, match="diurnal"):
            parse_traffic("tsunami")

    def test_unknown_key_names_token(self):
        with pytest.raises(ConfigError, match="'slope'"):
            parse_traffic("flash:slope=3")

    def test_junk_value_and_missing_equals(self):
        with pytest.raises(ConfigError, match="'fast'"):
            parse_traffic("flash:peak=fast")
        with pytest.raises(ConfigError, match="key=value"):
            parse_traffic("flash:peak")

    def test_nonpositive_value_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            parse_traffic("flash:peak=-5")


class TestTenantRoster:
    def test_parse_tenants_roundtrip(self):
        roster = parse_tenants(
            "gold:prio=0,share=3,rps=50,deadline=400;bronze:prio=2,share=1"
        )
        assert [t.name for t in roster] == ["gold", "bronze"]
        gold = roster[0]
        assert gold.priority == 0
        assert gold.share == 3.0
        assert gold.quota_rps == 50.0
        assert gold.deadline_ms == 400.0
        assert roster[1].priority == 2

    def test_parse_tenants_rejects_unknown_key_and_duplicates(self):
        with pytest.raises(ConfigError, match="unknown tenant key"):
            parse_tenants("gold:color=1")
        with pytest.raises(ConfigError, match="duplicate"):
            parse_tenants("gold:prio=0;gold:prio=1")

    def test_generation_assigns_tenants_share_weighted(self):
        tenants = parse_tenants("big:share=9;small:share=1")
        requests = generate_traffic_requests(
            parse_traffic("steady", seed=1), count=600, tenants=tenants,
        )
        counts = {"big": 0, "small": 0}
        for r in requests:
            counts[r.tenant] += 1
        assert counts["big"] > 5 * counts["small"]

    def test_generation_is_deterministic(self):
        tenants = parse_tenants("a:share=1;b:share=1")
        make = lambda: generate_traffic_requests(
            parse_traffic("flash", seed=5), count=100, tenants=tenants,
        )
        assert make() == make()

    def test_streams_are_tenant_private(self):
        tenants = parse_tenants("a:streams=2;b:streams=2")
        requests = generate_traffic_requests(
            parse_traffic("steady", seed=2), count=200, tenants=tenants,
        )
        scenes = {"a": set(), "b": set()}
        for r in requests:
            scenes[r.tenant].add(r.scene_key)
        assert scenes["a"].isdisjoint(scenes["b"])

    def test_priority_and_deadline_flow_to_requests(self):
        tenants = parse_tenants("slow:prio=3,deadline=900")
        requests = generate_traffic_requests(
            parse_traffic("steady"), count=10, tenants=tenants,
        )
        assert all(r.priority == 3 and r.deadline_ms == 900.0 for r in requests)


class TestAdmissionPrimitives:
    def test_token_bucket_sheds_over_rate(self):
        bucket = TokenBucket(rate_per_s=10.0, capacity=2.0)
        taken = sum(1 for _ in range(10) if bucket.take(0.0))
        assert taken == 2  # burst capacity only: no time has passed
        assert bucket.denied == 8
        assert bucket.take(100.0)  # 100 ms refills one token at 10/s

    def test_token_bucket_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate_per_s=0.0)
        assert all(bucket.take(0.0) for _ in range(100))
        assert bucket.denied == 0

    def test_retry_budget_spends_against_successes(self):
        budget = RetryBudget(ratio=0.1)
        # The floor lets a cold tenant retry a few times...
        assert all(budget.allow() for _ in range(3))
        # ...then denies until successes accrue.
        assert not budget.allow()
        assert budget.exhausted == 1
        for _ in range(20):
            budget.record_success()
        assert budget.allow()

    def test_retry_budget_negative_ratio_disables(self):
        budget = RetryBudget(ratio=-1.0)
        assert not budget.enabled
        assert all(budget.allow() for _ in range(100))

    def test_priority_queue_sheds_lowest_priority_first(self):
        queue = PriorityRequestQueue(max_depth=2)
        low = make_request(1, priority=5)
        mid = make_request(2, priority=2)
        high = make_request(3, priority=0)
        assert queue.admit_displacing(low) is None
        assert queue.admit_displacing(mid) is None
        # Full: the high-priority arrival displaces the priority-5 entry.
        victim = queue.admit_displacing(high)
        assert victim is low
        # A new low-priority arrival bounces off a full queue of betters.
        lower = make_request(4, priority=9)
        assert queue.admit_displacing(lower) is lower
        assert queue.shed_count == 2

    def test_priority_queue_orders_by_class_then_fifo(self):
        queue = PriorityRequestQueue(max_depth=8)
        first_low = make_request(1, arrival_ms=0.0, priority=4)
        late_high = make_request(2, arrival_ms=5.0, priority=0)
        later_high = make_request(3, arrival_ms=9.0, priority=0)
        for r in (first_low, late_high, later_high):
            queue.admit_displacing(r)
        assert [r.request_id for r in queue._items] == [2, 3, 1]
        # Retries re-enter at the head of their class, not the queue head.
        retried_low = make_request(4, priority=4)
        queue.requeue(retried_low)
        assert [r.request_id for r in queue._items] == [2, 3, 4, 1]
