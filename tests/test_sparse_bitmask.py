"""Tests for bitmask sorting, splitting and redundancy accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sparse.bitmask import (
    MaskReordering,
    compute_bitmasks,
    redundancy_ratio,
    sort_bitmasks,
    split_offsets,
    warp_mac_slots,
)


def figure5_nbmap():
    """The 8x9 output-stationary map from Figure 5 / Figure 6a.

    Figure 6a lists the neighbour bitmask of every output; entries here use
    arbitrary distinct input indices (values don't matter for masks).
    """
    bits = [
        [0, 0, 0, 0, 1, 1, 0, 0, 1],
        [0, 0, 0, 1, 1, 1, 0, 1, 0],
        [0, 0, 0, 1, 1, 0, 1, 0, 0],
        [1, 1, 1, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 0, 1, 0, 0, 0, 1],
        [0, 0, 0, 0, 1, 0, 1, 0, 0],
        [1, 0, 0, 0, 1, 0, 0, 0, 0],
        [0, 0, 1, 0, 1, 0, 0, 0, 0],
    ]
    nbmap = np.full((8, 9), -1, dtype=np.int32)
    counter = 0
    for i in range(8):
        for j in range(9):
            if bits[i][j]:
                nbmap[i, j] = counter % 8
                counter += 1
    return nbmap


class TestSplitOffsets:
    def test_single_split_is_everything(self):
        (seg,) = split_offsets(27, 1)
        assert np.array_equal(seg, np.arange(27))

    def test_balanced_partition(self):
        segs = split_offsets(27, 4)
        sizes = [len(s) for s in segs]
        assert sum(sizes) == 27
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_and_ordered(self):
        segs = split_offsets(9, 3)
        assert np.array_equal(np.concatenate(segs), np.arange(9))

    def test_invalid_splits(self):
        with pytest.raises(ConfigError):
            split_offsets(9, 0)
        with pytest.raises(ConfigError):
            split_offsets(3, 4)


class TestSortBitmasks:
    def test_descending_numeric_order(self):
        masks = np.array(
            [[0, 1], [1, 0], [1, 1], [0, 0]], dtype=bool
        )
        order = sort_bitmasks(masks)
        # Values: 01=1, 10=2, 11=3, 00=0 -> descending: 11, 10, 01, 00
        assert np.array_equal(order, [2, 1, 0, 3])

    def test_stable_for_equal_masks(self):
        masks = np.array([[1, 0], [1, 0], [0, 1]], dtype=bool)
        order = sort_bitmasks(masks)
        assert list(order) == [0, 1, 2]

    def test_figure6_ranking(self):
        # Figure 6a ranks outputs by bitmask value:
        # x4 (17) 1st, x5 (20) 2nd, x0 (25) 3rd, x2 (52) 4th, x1 (58) 5th,
        # x7 (80) 6th, x6 (272) 7th, x3 (464) 8th -- descending order is
        # the reverse.
        masks = compute_bitmasks(figure5_nbmap())
        order = sort_bitmasks(masks)
        assert list(order) == [3, 6, 7, 1, 2, 0, 5, 4]

    def test_wide_masks_beyond_64_bits(self):
        rng = np.random.default_rng(0)
        masks = rng.random((50, 125)) < 0.3  # K=5, D=3 exceeds int64 packing
        order = sort_bitmasks(masks)
        values = [
            int("".join("1" if b else "0" for b in masks[i]), 2) for i in order
        ]
        assert values == sorted(values, reverse=True)


class TestWarpMacSlots:
    def test_figure5_unsorted_redundancy(self):
        # Figure 5: with 4-thread warps and no sorting, 22 effective MACs
        # and 34 redundant -> 56 issued slots.
        masks = compute_bitmasks(figure5_nbmap())
        effective, issued = warp_mac_slots(masks, warp_rows=4)
        assert effective == 22
        assert issued - effective == 34

    def test_figure6_sorted_redundancy(self):
        # Figure 6b: sorting reduces redundant computation to 26 MACs.
        nbmap = figure5_nbmap()
        masks = compute_bitmasks(nbmap)
        order = sort_bitmasks(masks)
        effective, issued = warp_mac_slots(masks[order], warp_rows=4)
        assert effective == 22
        assert issued - effective == 26

    def test_warp_of_one_has_no_redundancy(self):
        masks = compute_bitmasks(figure5_nbmap())
        effective, issued = warp_mac_slots(masks, warp_rows=1)
        assert effective == issued == 22

    def test_ragged_tail_padded(self):
        masks = np.array([[1], [1], [1]], dtype=bool)
        effective, issued = warp_mac_slots(masks, warp_rows=2)
        assert effective == 3
        assert issued == 4  # second warp half empty

    def test_invalid_warp_rows(self):
        with pytest.raises(ConfigError):
            warp_mac_slots(np.ones((2, 2), dtype=bool), warp_rows=0)


class TestMaskReordering:
    def test_figure10_three_splits_reduce_redundancy(self):
        # Figure 10: splitting the Figure 6 mask into 3 parts reduces
        # redundant computation from 26 to 22 MAC slots.
        nbmap = figure5_nbmap()
        reorder = MaskReordering.build(nbmap, num_splits=3, sort=True)
        effective = issued = 0
        for submap in reorder.reordered_submaps(nbmap):
            e, i = warp_mac_slots(submap >= 0, warp_rows=4)
            effective += e
            issued += i
        assert effective == 22
        assert issued - effective == 22

    def test_unsorted_orders_are_identity(self):
        reorder = MaskReordering.build(figure5_nbmap(), num_splits=1, sort=False)
        assert np.array_equal(reorder.orders[0], np.arange(8))

    def test_submaps_cover_all_pairs(self):
        nbmap = figure5_nbmap()
        for splits in (1, 2, 3):
            reorder = MaskReordering.build(nbmap, num_splits=splits)
            total = sum(
                np.count_nonzero(s >= 0)
                for s in reorder.reordered_submaps(nbmap)
            )
            assert total == np.count_nonzero(nbmap >= 0)


class TestRedundancyRatio:
    def test_more_splits_never_increase_redundancy(self):
        rng = np.random.default_rng(7)
        nbmap = np.where(
            rng.random((256, 27)) < 0.25, rng.integers(0, 256, (256, 27)), -1
        ).astype(np.int32)
        ratios = [
            redundancy_ratio(nbmap, s, sort=True, warp_rows=8)
            for s in (1, 3, 9, 27)
        ]
        assert all(r >= 1.0 for r in ratios)
        # Monotone non-increasing within tolerance (sorting is per split).
        assert ratios[-1] <= ratios[0] + 1e-9

    def test_sorting_reduces_redundancy(self):
        rng = np.random.default_rng(11)
        nbmap = np.where(
            rng.random((512, 27)) < 0.3, rng.integers(0, 512, (512, 27)), -1
        ).astype(np.int32)
        unsorted = redundancy_ratio(nbmap, 1, sort=False, warp_rows=32)
        sorted_ = redundancy_ratio(nbmap, 1, sort=True, warp_rows=32)
        assert sorted_ <= unsorted

    def test_empty_map_is_inf(self):
        nbmap = np.full((4, 27), -1, dtype=np.int32)
        assert redundancy_ratio(nbmap, 1, sort=True) == float("inf")

    @given(st.integers(1, 27), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_property_ratio_at_least_one(self, splits, sort):
        rng = np.random.default_rng(splits)
        nbmap = np.where(
            rng.random((64, 27)) < 0.4, rng.integers(0, 64, (64, 27)), -1
        ).astype(np.int32)
        assert redundancy_ratio(nbmap, splits, sort=sort, warp_rows=4) >= 1.0
