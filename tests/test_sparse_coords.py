"""Tests for coordinate packing and uniqueness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.sparse.coords import pack_coords, unique_coords, unpack_coords


def coords_array(rows, dims=3, lo=-5000, hi=5000, seed=0):
    rng = np.random.default_rng(seed)
    spatial = rng.integers(lo, hi, size=(rows, dims))
    batch = rng.integers(0, 4, size=(rows, 1))
    return np.concatenate([batch, spatial], axis=1).astype(np.int32)


class TestPackCoords:
    def test_roundtrip(self):
        coords = coords_array(100)
        keys = pack_coords(coords)
        assert np.array_equal(unpack_coords(keys, 3), coords)

    def test_injective_on_distinct_rows(self):
        coords = np.array([[0, 1, 2, 3], [0, 1, 2, 4], [1, 1, 2, 3]], dtype=np.int32)
        keys = pack_coords(coords)
        assert len(np.unique(keys)) == 3

    def test_negative_coordinates(self):
        coords = np.array([[0, -100, -200, -300]], dtype=np.int32)
        assert np.array_equal(unpack_coords(pack_coords(coords), 3), coords)

    def test_out_of_range_raises(self):
        coords = np.array([[0, 40000, 0, 0]], dtype=np.int32)
        with pytest.raises(ShapeError):
            pack_coords(coords)

    def test_negative_batch_raises(self):
        coords = np.array([[-1, 0, 0, 0]], dtype=np.int32)
        with pytest.raises(ShapeError):
            pack_coords(coords)

    def test_1d_input_raises(self):
        with pytest.raises(ShapeError):
            pack_coords(np.array([1, 2, 3]))

    def test_2d_coordinates_supported(self):
        coords = np.array([[0, 5, -7], [1, 3, 2]], dtype=np.int32)
        assert np.array_equal(unpack_coords(pack_coords(coords), 2), coords)

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),
                st.integers(-3000, 3000),
                st.integers(-3000, 3000),
                st.integers(-3000, 3000),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip_and_injectivity(self, rows):
        coords = np.array(rows, dtype=np.int32)
        keys = pack_coords(coords)
        assert np.array_equal(unpack_coords(keys, 3), coords)
        unique_rows = len({tuple(r) for r in rows})
        assert len(np.unique(keys)) == unique_rows


class TestUniqueCoords:
    def test_removes_duplicates(self):
        coords = np.array(
            [[0, 1, 1, 1], [0, 2, 2, 2], [0, 1, 1, 1]], dtype=np.int32
        )
        unique, inverse = unique_coords(coords)
        assert len(unique) == 2
        assert np.array_equal(unique[inverse], coords)

    def test_preserves_first_occurrence_order(self):
        coords = np.array(
            [[0, 9, 9, 9], [0, 1, 1, 1], [0, 9, 9, 9], [0, 5, 5, 5]],
            dtype=np.int32,
        )
        unique, _ = unique_coords(coords)
        assert np.array_equal(
            unique,
            np.array([[0, 9, 9, 9], [0, 1, 1, 1], [0, 5, 5, 5]], dtype=np.int32),
        )

    def test_batch_column_distinguishes(self):
        coords = np.array([[0, 1, 1, 1], [1, 1, 1, 1]], dtype=np.int32)
        unique, _ = unique_coords(coords)
        assert len(unique) == 2

    def test_inverse_reconstructs(self):
        coords = coords_array(500, lo=-10, hi=10, seed=3)  # force duplicates
        unique, inverse = unique_coords(coords)
        assert np.array_equal(unique[inverse], coords)
        assert len(unique) < len(coords)
