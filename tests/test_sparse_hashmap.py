"""Tests for the GPU-style coordinate hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MapError
from repro.sparse.hashmap import CoordinateHashMap


class TestCoordinateHashMap:
    def test_query_hits(self):
        keys = np.array([10, 20, 30, 40], dtype=np.int64)
        table = CoordinateHashMap(keys)
        assert np.array_equal(table.query(keys), np.arange(4, dtype=np.int32))

    def test_query_misses_return_minus_one(self):
        table = CoordinateHashMap(np.array([1, 2, 3], dtype=np.int64))
        result = table.query(np.array([99, 2, -7], dtype=np.int64))
        assert result[0] == -1
        assert result[1] == 1
        assert result[2] == -1

    def test_len_matches_inserted(self):
        keys = np.arange(100, dtype=np.int64)
        assert len(CoordinateHashMap(keys)) == 100

    def test_duplicate_keys_rejected(self):
        with pytest.raises(MapError):
            CoordinateHashMap(np.array([5, 5], dtype=np.int64))

    def test_empty_table(self):
        table = CoordinateHashMap(np.array([], dtype=np.int64))
        assert len(table) == 0
        assert np.array_equal(
            table.query(np.array([1, 2], dtype=np.int64)),
            np.array([-1, -1], dtype=np.int32),
        )

    def test_adversarial_collisions(self):
        # Keys spaced by the table capacity would collide under a modulo
        # hash; Fibonacci mixing must still resolve all of them.
        keys = (np.arange(64, dtype=np.int64) * 4096) + 7
        table = CoordinateHashMap(keys)
        assert np.array_equal(table.query(keys), np.arange(64, dtype=np.int32))

    def test_probe_statistics_recorded(self):
        keys = np.arange(1000, dtype=np.int64)
        table = CoordinateHashMap(keys)
        table.query(keys)
        assert table.stats.inserts == 1000
        assert table.stats.queries == 1000
        assert table.stats.query_probes >= 1000
        assert table.stats.insert_probes >= 1000

    def test_negative_keys(self):
        keys = np.array([-1, -100, -(2**40)], dtype=np.int64)
        table = CoordinateHashMap(keys)
        assert np.array_equal(table.query(keys), np.arange(3, dtype=np.int32))

    @given(st.sets(st.integers(-(2**50), 2**50), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_property_all_inserted_found_all_others_missed(self, key_set):
        keys = np.array(sorted(key_set), dtype=np.int64)
        table = CoordinateHashMap(keys)
        assert np.array_equal(table.query(keys), np.arange(len(keys)))
        probes = keys + 1  # shifted keys: hit only where key+1 also present
        expected = np.array(
            [list(keys).index(k) if k in key_set else -1 for k in probes]
        )
        assert np.array_equal(table.query(probes), expected)
