"""Tests for kernel-map construction (submanifold, strided, transposed)."""

import numpy as np
import pytest

from repro.errors import MapError
from repro.sparse.kmap import KernelMap, MapKey, build_kernel_map, downsample_coords
from repro.sparse.hashmap import HashMapStats


def line_coords():
    """Three collinear points: [0], [1], [2] on a 1-D grid (D=1)."""
    return np.array([[0, 0], [0, 1], [0, 2]], dtype=np.int32)


def figure2_coords():
    """The 8-point 2-D example used throughout the paper (Figure 2-ish).

    A small irregular 2-D pattern exercising partial neighbourhoods.
    """
    pts = [(0, 0), (0, 2), (1, 1), (2, 0), (2, 3), (3, 1), (3, 3), (4, 2)]
    return np.array([[0, x, y] for x, y in pts], dtype=np.int32)


class TestSubmanifoldMap:
    def test_output_coords_equal_input(self):
        coords = figure2_coords()
        kmap = build_kernel_map(coords, kernel_size=3)
        assert np.array_equal(kmap.out_coords, coords)
        assert kmap.num_inputs == kmap.num_outputs == 8

    def test_identity_offset_maps_self(self):
        coords = figure2_coords()
        kmap = build_kernel_map(coords, kernel_size=3)
        centre = 4  # identity offset index for K=3, D=2
        assert np.array_equal(kmap.nbmap[:, centre], np.arange(8))

    def test_line_neighbours(self):
        kmap = build_kernel_map(line_coords(), kernel_size=3)
        # offsets for K=3, D=1 are [-1, 0, 1]
        assert np.array_equal(kmap.nbmap[0], [-1, 0, 1])
        assert np.array_equal(kmap.nbmap[1], [0, 1, 2])
        assert np.array_equal(kmap.nbmap[2], [1, 2, -1])

    def test_map_sizes_and_pairs_consistent(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        assert kmap.total_pairs == kmap.map_sizes.sum()
        for k, (in_idx, out_idx) in enumerate(kmap.pairs()):
            assert len(in_idx) == kmap.map_sizes[k]
            assert np.array_equal(kmap.nbmap[out_idx, k], in_idx)

    def test_pairs_match_coordinate_arithmetic(self):
        coords = figure2_coords()
        kmap = build_kernel_map(coords, kernel_size=3)
        for k, (in_idx, out_idx) in enumerate(kmap.pairs()):
            delta = kmap.offsets[k]
            for p, q in zip(in_idx, out_idx):
                assert np.array_equal(coords[p, 1:], coords[q, 1:] + delta)

    def test_mean_neighbors(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        assert kmap.mean_neighbors == kmap.total_pairs / 8

    def test_batch_isolation(self):
        # Identical spatial coords in different batches must not connect.
        coords = np.array([[0, 0, 0], [1, 0, 1]], dtype=np.int32)
        kmap = build_kernel_map(coords, kernel_size=3)
        assert kmap.total_pairs == 2  # only the two identity pairs


class TestStridedMap:
    def test_downsample_coords_coarsens(self):
        coords = figure2_coords()
        out = downsample_coords(coords, stride=(2, 2), tensor_stride=(1, 1))
        assert np.all(out[:, 1:] % 2 == 0)
        assert len(out) <= len(coords)

    def test_strided_map_output_count(self):
        coords = figure2_coords()
        kmap = build_kernel_map(coords, kernel_size=2, stride=2)
        # Every input must appear in exactly one output cell for K=2/s=2.
        assert kmap.total_pairs == len(coords)

    def test_every_input_covered_k2s2(self):
        coords = figure2_coords()
        kmap = build_kernel_map(coords, kernel_size=2, stride=2)
        seen = np.sort(np.concatenate([p for p, _ in kmap.pairs()]))
        assert np.array_equal(seen, np.arange(len(coords)))

    def test_tensor_stride_dilates_offsets(self):
        # Points at stride-2 positions: neighbours are +-2, not +-1.
        coords = np.array([[0, 0], [0, 2], [0, 4]], dtype=np.int32)
        kmap = build_kernel_map(coords, kernel_size=3, tensor_stride=2)
        assert np.array_equal(kmap.nbmap[1], [0, 1, 2])

    def test_k3_s2_reaches_adjacent_cells(self):
        coords = np.array([[0, 1], [0, 2]], dtype=np.int32)
        kmap = build_kernel_map(coords, kernel_size=3, stride=2)
        # Output cells are 0 and 2; cell 2's offset -1 reaches input at 1.
        assert kmap.total_pairs >= 3


class TestTransposedMap:
    def test_transposed_swaps_counts(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=2, stride=2)
        t = kmap.transposed()
        assert t.num_inputs == kmap.num_outputs
        assert t.num_outputs == kmap.num_inputs
        assert t.total_pairs == kmap.total_pairs

    def test_transposed_pairs_are_swapped(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        t = kmap.transposed()
        for (a_in, a_out), (b_in, b_out) in zip(kmap.pairs(), t.pairs()):
            assert sorted(zip(a_in, a_out)) == sorted(zip(b_out, b_in))

    def test_double_transpose_roundtrip(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        tt = kmap.transposed().transposed()
        assert np.array_equal(tt.nbmap, kmap.nbmap)

    def test_transposed_key_flag(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        assert kmap.key.transposed is False
        assert kmap.transposed().key.transposed is True


class TestPadding:
    def test_padded_rows_multiple_of_cta(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        padded = kmap.padded_nbmap(16)
        assert padded.shape[0] == 16
        assert np.all(padded[8:] == -1)
        assert np.array_equal(padded[:8], kmap.nbmap)

    def test_no_padding_when_aligned(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        assert kmap.padded_nbmap(4).shape[0] == 8
        assert kmap.padded_nbmap(8) is kmap.nbmap

    def test_invalid_cta(self):
        kmap = build_kernel_map(figure2_coords(), kernel_size=3)
        with pytest.raises(ValueError):
            kmap.padded_nbmap(0)


class TestValidation:
    def test_nbmap_out_of_range_rejected(self):
        with pytest.raises(MapError):
            KernelMap(
                nbmap=np.array([[5]], dtype=np.int32),
                offsets=np.zeros((1, 2), dtype=np.int32),
                num_inputs=2,
                out_coords=np.zeros((1, 3), dtype=np.int32),
                build_stats=HashMapStats(),
                key=MapKey((1,), (1,), (1,)),
            )

    def test_mismatched_offsets_rejected(self):
        with pytest.raises(MapError):
            KernelMap(
                nbmap=np.zeros((2, 3), dtype=np.int32),
                offsets=np.zeros((2, 2), dtype=np.int32),
                num_inputs=4,
                out_coords=np.zeros((2, 3), dtype=np.int32),
                build_stats=HashMapStats(),
                key=MapKey((1,), (1,), (1,)),
            )
