"""Tests for kernel offset generation and point-cloud quantization."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.sparse.kernel_offsets import (
    identity_offset_index,
    kernel_offsets,
    kernel_volume,
    normalize_kernel_size,
)
from repro.sparse.quantize import sparse_quantize


class TestKernelOffsets:
    def test_delta_3_of_3_volume(self):
        offsets = kernel_offsets(3, ndim=3)
        assert offsets.shape == (27, 3)
        assert kernel_volume(3, 3) == 27

    def test_delta_2_of_5_matches_paper(self):
        # Delta^2(5) = {-2,...,2}^2 from Section 2.1.
        offsets = kernel_offsets(5, ndim=2)
        assert offsets.min() == -2 and offsets.max() == 2
        assert offsets.shape == (25, 2)

    def test_even_kernel_forward_convention(self):
        offsets = kernel_offsets(2, ndim=3)
        assert offsets.min() == 0 and offsets.max() == 1
        assert offsets.shape == (8, 3)

    def test_anisotropic_kernel(self):
        offsets = kernel_offsets((3, 1, 3), ndim=3)
        assert offsets.shape == (9, 3)
        assert np.all(offsets[:, 1] == 0)

    def test_offsets_are_unique(self):
        offsets = kernel_offsets(3, ndim=3)
        assert len({tuple(o) for o in offsets}) == 27

    def test_last_dimension_fastest(self):
        offsets = kernel_offsets(3, ndim=2)
        assert np.array_equal(offsets[0], [-1, -1])
        assert np.array_equal(offsets[1], [-1, 0])

    def test_identity_offset_index(self):
        assert identity_offset_index(3, 3) == 13  # centre of 27
        assert identity_offset_index(2, 3) == 0  # (0,0,0) is first
        assert identity_offset_index((3, 2, 3), 3) >= 0

    def test_invalid_kernel_size(self):
        with pytest.raises(ConfigError):
            kernel_offsets(0, ndim=3)
        with pytest.raises(ConfigError):
            normalize_kernel_size((3, 3), ndim=3)


class TestSparseQuantize:
    def test_basic_quantization(self):
        points = np.array([[0.05, 0.07, 0.01], [0.24, 0.11, 0.33]])
        coords, _ = sparse_quantize(points, voxel_size=0.1)
        assert np.array_equal(
            coords, np.array([[0, 0, 0, 0], [0, 2, 1, 3]], dtype=np.int32)
        )

    def test_deduplication(self):
        points = np.array([[0.01, 0.01, 0.01], [0.02, 0.02, 0.02]])
        coords, _ = sparse_quantize(points, voxel_size=0.1)
        assert len(coords) == 1

    def test_first_reduce_keeps_first_feature(self):
        points = np.array([[0.01, 0.01, 0.01], [0.02, 0.02, 0.02]])
        feats = np.array([[1.0], [2.0]])
        _, reduced = sparse_quantize(points, 0.1, features=feats, reduce="first")
        assert reduced[0, 0] == 1.0

    def test_mean_reduce_averages(self):
        points = np.array([[0.01, 0.01, 0.01], [0.02, 0.02, 0.02]])
        feats = np.array([[1.0], [3.0]])
        _, reduced = sparse_quantize(points, 0.1, features=feats, reduce="mean")
        assert reduced[0, 0] == pytest.approx(2.0)

    def test_negative_points_floor(self):
        points = np.array([[-0.05, 0.0, 0.0]])
        coords, _ = sparse_quantize(points, 0.1)
        assert coords[0, 1] == -1  # floor, not truncation

    def test_batch_index_written(self):
        coords, _ = sparse_quantize(np.zeros((3, 3)), 0.1, batch_index=5)
        assert np.all(coords[:, 0] == 5)

    def test_per_dimension_voxel_size(self):
        points = np.array([[1.0, 1.0, 1.0]])
        coords, _ = sparse_quantize(points, voxel_size=(0.5, 1.0, 2.0))
        assert np.array_equal(coords[0, 1:], [2, 1, 0])

    def test_invalid_inputs(self):
        with pytest.raises(ShapeError):
            sparse_quantize(np.zeros(3), 0.1)
        with pytest.raises(ValueError):
            sparse_quantize(np.zeros((3, 3)), -1.0)
        with pytest.raises(ValueError):
            sparse_quantize(np.zeros((3, 3)), 0.1, reduce="max")
        with pytest.raises(ShapeError):
            sparse_quantize(np.zeros((3, 3)), 0.1, features=np.zeros((2, 1)))
