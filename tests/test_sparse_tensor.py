"""Tests for SparseTensor, batching and the map cache."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import SparseTensor
from repro.sparse.tensor import MapCache, batch_sparse_tensors


def tensor(n=20, channels=3, seed=0, stride=1):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, 8, (n, 3)).astype(np.int32) * stride],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((len(coords), channels)).astype(np.float32)
    return SparseTensor(coords, feats, stride=stride)


class TestSparseTensor:
    def test_basic_properties(self):
        t = tensor()
        assert t.ndim == 3
        assert t.batch_size == 1
        assert t.num_channels == 3
        assert t.stride == (1, 1, 1)

    def test_with_feats_shares_cache(self):
        t = tensor()
        u = t.with_feats(t.feats * 2)
        assert u.cache is t.cache
        assert np.array_equal(u.coords, t.coords)

    def test_dense_roundtrip(self):
        t = tensor()
        dense = t.dense()
        assert dense.shape[0] == 1
        assert dense.shape[-1] == 3
        # Every point's features appear at its (shifted) location.
        mins = t.coords[:, 1:].min(axis=0)
        for i in range(t.num_points):
            b, x, y, z = t.coords[i]
            np.testing.assert_array_equal(
                dense[b, x - mins[0], y - mins[1], z - mins[2]], t.feats[i]
            )

    def test_dense_empty_raises(self):
        t = SparseTensor(
            np.zeros((0, 4), np.int32), np.zeros((0, 2), np.float32)
        )
        with pytest.raises(ShapeError):
            t.dense()
        assert t.batch_size == 0

    def test_validation(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.zeros((2, 4), np.int32), np.zeros((3, 2), np.float32))
        with pytest.raises(ShapeError):
            SparseTensor(np.zeros((2, 4), np.int32), np.zeros((2, 2), np.int32))
        with pytest.raises(ShapeError):
            SparseTensor(np.zeros((2, 4), np.int32), np.zeros((2, 2), np.float32),
                         stride=(1, 1))

    def test_int_stride_broadcast(self):
        t = tensor(stride=2)
        assert t.stride == (2, 2, 2)


class TestBatching:
    def test_batch_assigns_indices(self):
        batch = batch_sparse_tensors([tensor(seed=0), tensor(seed=1)])
        assert batch.batch_size == 2

    def test_batch_preserves_counts(self):
        a, b = tensor(seed=0), tensor(seed=1)
        batch = batch_sparse_tensors([a, b])
        assert batch.num_points == a.num_points + b.num_points

    def test_batch_requires_same_stride(self):
        with pytest.raises(ShapeError):
            batch_sparse_tensors([tensor(stride=1), tensor(stride=2)])

    def test_empty_batch_rejected(self):
        with pytest.raises(ShapeError):
            batch_sparse_tensors([])

    def test_batched_convolution_isolates_samples(self):
        # A convolution on the batch must equal per-sample convolutions.
        from repro.nn import ExecutionContext, SparseConv3d

        a, b = tensor(seed=0), tensor(seed=1)
        batch = batch_sparse_tensors([a, b])
        conv = SparseConv3d(3, 5, 3, seed=3)
        out_batch = conv(batch, ExecutionContext(precision="fp32"))
        out_a = conv(a, ExecutionContext(precision="fp32"))
        out_b = conv(b, ExecutionContext(precision="fp32"))
        np.testing.assert_allclose(
            out_batch.feats,
            np.concatenate([out_a.feats, out_b.feats]),
            rtol=1e-5,
        )


class TestMapCache:
    def test_hit_miss_accounting(self):
        cache = MapCache()
        assert cache.get("k") is None
        cache.put("k", "value")
        assert cache.get("k") == "value"
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_clear(self):
        cache = MapCache()
        cache.put("k", "v")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
