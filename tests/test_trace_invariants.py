"""Property-based tests on trace invariants across dataflows and configs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.tracecheck import check_conv_trace, check_trace
from repro.gpusim.trace import LaunchKind
from repro.kernels import (
    DATAFLOWS,
    ImplicitGemmConfig,
    fetch_on_demand_trace,
    gather_gemm_scatter_trace,
    implicit_gemm_trace,
    trace_dataflow,
    wgrad_trace,
)
from repro.precision import Precision
from repro.sparse.kmap import build_kernel_map


def random_kmap(seed: int, n=120, extent=10):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    return build_kernel_map(coords, kernel_size=3)


@pytest.fixture(scope="module")
def kmap():
    return random_kmap(0, n=400, extent=14)


class TestImplicitGemmInvariants:
    def test_main_flops_cover_effective_work(self, kmap):
        trace = implicit_gemm_trace(
            kmap, 16, 16, config=ImplicitGemmConfig(sort=False)
        )
        main = trace.filter_name("main").launches[0]
        assert main.flops >= 2 * kmap.total_pairs * 16 * 16

    def test_sorting_never_increases_main_flops(self, kmap):
        unsorted = implicit_gemm_trace(
            kmap, 16, 16, config=ImplicitGemmConfig(sort=False)
        ).filter_name("main").summary().flops
        sorted_ = implicit_gemm_trace(
            kmap, 16, 16, config=ImplicitGemmConfig(sort=True)
        ).filter_name("main").summary().flops
        assert sorted_ <= unsorted

    @given(splits=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_more_splits_never_increase_main_flops(self, splits):
        kmap = random_kmap(3)
        base = implicit_gemm_trace(
            kmap, 8, 8, config=ImplicitGemmConfig(num_splits=1)
        ).filter_name("main").summary().flops
        split = implicit_gemm_trace(
            kmap, 8, 8, config=ImplicitGemmConfig(num_splits=splits)
        ).filter_name("main").summary().flops
        assert split <= base + 1e-6

    def test_splits_multiply_partial_writes(self, kmap):
        one = implicit_gemm_trace(
            kmap, 16, 16, config=ImplicitGemmConfig(num_splits=1)
        ).filter_name("main").summary().dram_write_bytes
        three = implicit_gemm_trace(
            kmap, 16, 16, config=ImplicitGemmConfig(num_splits=3)
        ).filter_name("main").summary().dram_write_bytes
        assert three > 2 * one

    def test_charge_mapping_flag(self, kmap):
        charged = implicit_gemm_trace(kmap, 8, 8, charge_mapping=True)
        uncharged = implicit_gemm_trace(kmap, 8, 8, charge_mapping=False)
        assert len(charged.filter(LaunchKind.MAPPING)) == 3
        assert len(uncharged.filter(LaunchKind.MAPPING)) == 0

    def test_flops_scale_with_channels(self, kmap):
        small = implicit_gemm_trace(kmap, 8, 8).summary().flops
        large = implicit_gemm_trace(kmap, 16, 16).summary().flops
        assert large == pytest.approx(4 * small, rel=0.01)


class TestCrossDataflowInvariants:
    def test_fod_atomic_traffic_formula(self, kmap):
        trace = fetch_on_demand_trace(kmap, 8, 24)
        fused = trace.filter_name("fused").launches[0]
        assert fused.atomic_write_bytes == pytest.approx(
            4.0 * kmap.total_pairs * 24
        )

    def test_gather_scatter_launch_count(self, kmap):
        nonempty = int(np.count_nonzero(kmap.map_sizes))
        plain = gather_gemm_scatter_trace(kmap, 8, 8, fused=False)
        assert len(plain) == 3 * nonempty + 1

    def test_all_dataflows_same_effective_flops_order(self, kmap):
        # Weight-stationary dataflows perform exactly the effective work;
        # implicit GEMM issues at least that much.
        effective = 2.0 * kmap.total_pairs * 8 * 8
        gs = gather_gemm_scatter_trace(kmap, 8, 8).summary().flops
        fod = fetch_on_demand_trace(kmap, 8, 8).summary().flops
        ig = implicit_gemm_trace(
            kmap, 8, 8, config=ImplicitGemmConfig(sort=False),
            charge_mapping=False,
        ).summary().flops
        assert fod == pytest.approx(effective)
        assert gs >= effective  # M-padding of per-offset GEMMs
        assert ig >= effective

    def test_wgrad_flops_match_forward_effective(self, kmap):
        trace = wgrad_trace(kmap, 8, 24)
        assert trace.summary().flops == pytest.approx(
            2.0 * kmap.total_pairs * 8 * 24
        )

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_traces_are_finite_and_positive(self, seed):
        kmap = random_kmap(seed, n=60, extent=6)
        for trace in (
            gather_gemm_scatter_trace(kmap, 4, 4),
            fetch_on_demand_trace(kmap, 4, 4),
            implicit_gemm_trace(kmap, 4, 4),
            wgrad_trace(kmap, 4, 4),
        ):
            assert check_trace(trace) == []
            s = trace.summary()
            assert np.isfinite(s.flops) and s.flops >= 0
            assert np.isfinite(s.dram_bytes) and s.dram_bytes > 0
            assert s.launches >= 1


class TestSanitizerGrid:
    """Every registered dataflow, at every precision, must emit traces that
    satisfy the conservation invariants and the write-race detector."""

    @pytest.mark.parametrize("precision", list(Precision))
    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_conv_trace_sanitized(self, kmap, dataflow, precision):
        trace = trace_dataflow(dataflow, kmap, 8, 24, precision=precision)
        violations = check_conv_trace(
            trace, kmap, 8, 24, itemsize=precision.itemsize
        )
        assert violations == [], [str(v) for v in violations]

    @pytest.mark.parametrize("dataflow", DATAFLOWS)
    def test_strided_map_sanitized(self, dataflow):
        rng = np.random.default_rng(7)
        coords = np.unique(
            np.concatenate(
                [np.zeros((150, 1), np.int32),
                 rng.integers(0, 8, (150, 3)).astype(np.int32)],
                axis=1,
            ),
            axis=0,
        )
        strided = build_kernel_map(coords, kernel_size=2, stride=2)
        trace = trace_dataflow(dataflow, strided, 4, 16)
        violations = check_conv_trace(trace, strided, 4, 16)
        assert violations == [], [str(v) for v in violations]
