"""Verified trace memoization in the gpusim engine (ROADMAP item 5)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.gpusim import engine
from repro.gpusim.engine import (
    PRICING_FIELDS,
    SCHEDULE_FIELDS,
    TraceMemo,
    clear_trace_memo,
    launch_signature,
    trace_memo_stats,
    trace_signature,
)
from repro.hw.specs import get_device
from repro.kernels.registry import Dataflow, trace_dataflow
from repro.sparse.kmap import build_kernel_map


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_trace_memo()
    yield
    clear_trace_memo()


def _kmap(n=150, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [
                np.zeros((n, 1), np.int32),
                rng.integers(0, 12, (n, 3)).astype(np.int32),
            ],
            axis=1,
        ),
        axis=0,
    )
    return build_kernel_map(coords, kernel_size=3, stride=1)


def _trace(dataflow=Dataflow.IMPLICIT_GEMM, precision="fp16"):
    return trace_dataflow(dataflow, _kmap(), 16, 16, precision=precision)


class TestByteIdentity:
    @pytest.mark.parametrize(
        "dataflow",
        [
            Dataflow.IMPLICIT_GEMM,
            Dataflow.GATHER_SCATTER,
            Dataflow.FETCH_ON_DEMAND,
        ],
    )
    @pytest.mark.parametrize("precision", ["fp16", "fp32"])
    @pytest.mark.parametrize("streams", [1, 2, 4])
    def test_memoized_equals_unmemoized_grid(
        self, dataflow, precision, streams
    ):
        """Across the dataflow x precision x stream grid, miss path and
        hit path are bit-identical to the unmemoized estimate."""
        device = get_device("a100")
        trace = trace_dataflow(
            dataflow, _kmap(), 16, 16, precision=precision
        )
        honest = engine.estimate_trace_us(
            trace, device, precision, streams, memoize=False
        )
        miss = engine.estimate_trace_us(trace, device, precision, streams)
        hit = engine.estimate_trace_us(trace, device, precision, streams)
        assert miss == honest
        assert hit == honest

    def test_devices_never_alias(self):
        trace = _trace()
        a100 = engine.estimate_trace_us(trace, get_device("a100"), "fp16")
        orin = engine.estimate_trace_us(
            trace, get_device("jetson agx orin"), "fp16"
        )
        assert a100 != orin
        assert a100 == engine.estimate_trace_us(
            trace, get_device("a100"), "fp16", memoize=False
        )

    def test_precision_alias_strings_stay_consistent(self):
        from repro.precision import Precision

        trace = _trace()
        device = get_device("a100")
        by_str = engine.estimate_trace_us(trace, device, "fp16")
        by_enum = engine.estimate_trace_us(trace, device, Precision.FP16)
        assert by_str == by_enum

    def test_mutating_a_launch_rekeys(self):
        device = get_device("a100")
        trace = _trace()
        engine.estimate_trace_us(trace, device, "fp16")
        key_before = trace_signature(trace, device, "fp16")
        trace.launches[0].flops += 1.0e6
        assert trace_signature(trace, device, "fp16") != key_before
        after = engine.estimate_trace_us(trace, device, "fp16")
        assert after == engine.estimate_trace_us(
            trace, device, "fp16", memoize=False
        )


class TestSignatures:
    def test_pricing_signature_ignores_schedule_fields(self):
        trace = list(_trace())
        device = get_device("a100")
        key = trace_signature(trace, device, "fp16")
        renamed = [dataclasses.replace(launch) for launch in trace]
        renamed[0].name = "renamed"
        renamed[0].fuse_group = "zz"
        assert trace_signature(renamed, device, "fp16") == key

    def test_multistream_signature_keys_schedule_fields(self):
        trace = list(_trace())
        device = get_device("a100")
        key = trace_signature(trace, device, "fp16", streams=2)
        renamed = [dataclasses.replace(launch) for launch in trace]
        renamed[0].name = "renamed"
        assert trace_signature(renamed, device, "fp16", streams=2) != key

    def test_launch_signature_field_order(self):
        launch = list(_trace())[0]
        sig = launch_signature(launch)
        assert len(sig) == len(PRICING_FIELDS)
        scheduled = launch_signature(launch, scheduled=True)
        assert len(scheduled) == len(PRICING_FIELDS) + len(SCHEDULE_FIELDS)

    def test_streams_must_be_positive(self):
        with pytest.raises(ValueError):
            engine.estimate_trace_us(_trace(), get_device("a100"), "fp16", 0)


class TestMemoAccounting:
    # Counter assertions are delta-based: the suite-wide trace sanitizer
    # (tests/conftest.py) cross-validates every estimate with its own
    # internal estimate_trace_us call, which adds memo traffic of its own.

    def test_hit_miss_counters(self):
        device = get_device("a100")
        trace = _trace()
        engine.estimate_trace_us(trace, device, "fp16")
        first = trace_memo_stats()
        assert first["misses"] >= 1
        assert first["size"] >= 1
        engine.estimate_trace_us(trace, device, "fp16")
        second = trace_memo_stats()
        assert second["hits"] > first["hits"]  # repeat is served from memo
        assert second["misses"] == first["misses"]  # no new entries priced
        assert second["size"] == first["size"]

    def test_memoize_false_bypasses_stats(self):
        device = get_device("a100")
        trace = _trace()
        engine.estimate_trace_us(trace, device, "fp16", memoize=False)
        before = trace_memo_stats()
        # If the memoize=False call had stored an entry, this memoized call
        # would hit; instead it must miss and insert the first entry for
        # this key.
        engine.estimate_trace_us(trace, device, "fp16")
        after = trace_memo_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["size"] == before["size"] + 1

    def test_clear_resets_entries_and_counters(self):
        device = get_device("a100")
        trace = _trace()
        engine.estimate_trace_us(trace, device, "fp16")
        clear_trace_memo()
        stats = trace_memo_stats()
        assert stats == {
            "size": 0,
            "capacity": stats["capacity"],
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }


class TestTraceMemoClass:
    def test_fifo_eviction_at_capacity(self):
        memo = TraceMemo(capacity=2)
        memo.put("a", 1.0)
        memo.put("b", 2.0)
        memo.put("c", 3.0)
        assert memo.get("a") is None  # oldest evicted
        assert memo.get("b") == 2.0
        assert memo.get("c") == 3.0
        assert memo.stats()["evictions"] == 1
        assert memo.stats()["size"] == 2

    def test_overwrite_does_not_evict(self):
        memo = TraceMemo(capacity=2)
        memo.put("a", 1.0)
        memo.put("b", 2.0)
        memo.put("a", 9.0)
        assert memo.stats()["evictions"] == 0
        assert memo.get("a") == 9.0
        assert memo.get("b") == 2.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceMemo(capacity=0)
