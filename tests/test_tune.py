"""Tests for the Sparse Autotuner: spaces, groups, tuning, training tuner."""

import numpy as np
import pytest

from repro.kernels.registry import Dataflow
from repro.models import MinkUNet
from repro.nn import ExecutionContext, LayerConfig
from repro.nn.context import Role
from repro.sparse import SparseTensor
from repro.tune import (
    BindingScheme,
    SPCONV2_SPACE,
    SparseAutotuner,
    TORCHSPARSEPP_SPACE,
    TrainingTuner,
    discover_groups,
    load_policy,
    pick_binding_scheme,
    save_policy,
)
from repro.tune.space import split_space


def cloud(n=500, extent=20, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((len(coords), 4)).astype(np.float32)
    return SparseTensor(coords, feats)


@pytest.fixture(scope="module")
def tiny_model():
    return MinkUNet(in_channels=4, num_classes=5, width=0.25)


class TestDesignSpaces:
    def test_torchsparsepp_superset_of_spconv2(self):
        assert len(TORCHSPARSEPP_SPACE) > len(SPCONV2_SPACE)
        spconv_kinds = {
            (c.dataflow, c.ig_config.num_splits, c.ig_config.sort)
            for c in SPCONV2_SPACE
        }
        ours = {
            (c.dataflow, c.ig_config.num_splits, c.ig_config.sort)
            for c in TORCHSPARSEPP_SPACE
        }
        assert spconv_kinds <= ours

    def test_full_space_includes_unsorted_and_fod(self):
        kinds = {(c.dataflow, c.ig_config.sort) for c in TORCHSPARSEPP_SPACE}
        assert (Dataflow.IMPLICIT_GEMM, False) in kinds
        assert any(d is Dataflow.FETCH_ON_DEMAND for d, _ in kinds)

    def test_split_space_helper(self):
        space = split_space([0, 1, 2])
        splits = {(c.ig_config.num_splits, c.ig_config.sort) for c in space}
        assert (1, False) in splits  # "split 0" notation
        assert (2, True) in splits


class TestGroupDiscovery:
    def test_groups_share_maps(self, tiny_model):
        ctx = ExecutionContext(simulate_only=True)
        sigs, by_sig = discover_groups(tiny_model, cloud(), ctx)
        assert len(sigs) >= 5
        for sig in sigs:
            kmaps = {id(r.kmap) for r in by_sig[sig]}
            assert len(kmaps) == 1  # one map per group per sample

    def test_probe_resets_trace(self, tiny_model):
        ctx = ExecutionContext(simulate_only=True)
        discover_groups(tiny_model, cloud(), ctx)
        assert len(ctx.trace) == 0

    def test_layer_counts_cover_all_convs(self, tiny_model):
        ctx = ExecutionContext(simulate_only=True)
        _, by_sig = discover_groups(tiny_model, cloud(), ctx)
        total = sum(len(v) for v in by_sig.values())
        from repro.nn.conv import SparseConv3d

        conv_count = sum(
            1 for _, m in tiny_model.named_modules()
            if isinstance(m, SparseConv3d)
        )
        assert total == conv_count


class TestSparseAutotuner:
    def test_tuned_no_worse_than_default(self, tiny_model):
        tuner = SparseAutotuner()
        policy, report = tuner.tune(
            tiny_model, [cloud()], device="3090", precision="fp16"
        )
        assert report.end_to_end_us <= report.default_us * (1 + 1e-9)

    def test_policy_runs_end_to_end(self, tiny_model):
        policy, report = SparseAutotuner().tune(
            tiny_model, [cloud()], device="3090", precision="fp16"
        )
        ctx = ExecutionContext(
            device="3090", precision="fp16", policy=policy, simulate_only=True
        )
        tiny_model.eval()
        tiny_model(cloud(), ctx)
        assert ctx.latency_us() > 0

    def test_report_structure(self, tiny_model):
        _, report = SparseAutotuner().tune(
            tiny_model, [cloud()], device="a100", precision="fp16"
        )
        assert len(report.groups) >= 5
        for group in report.groups:
            assert len(group.candidate_latencies_us) == len(TORCHSPARSEPP_SPACE)
            assert min(group.candidate_latencies_us) > 0
        assert "tuned" in report.describe()

    def test_restricted_space_never_beats_full_space(self, tiny_model):
        _, full = SparseAutotuner(space=TORCHSPARSEPP_SPACE).tune(
            tiny_model, [cloud()], device="3090", precision="fp32"
        )
        _, restricted = SparseAutotuner(space=SPCONV2_SPACE).tune(
            tiny_model, [cloud()], device="3090", precision="fp32"
        )
        assert full.end_to_end_us <= restricted.end_to_end_us * (1 + 1e-9)

    def test_multiple_samples_average(self, tiny_model):
        policy, report = SparseAutotuner().tune(
            tiny_model, [cloud(seed=0), cloud(seed=1)],
            device="3090", precision="fp16",
        )
        assert report.end_to_end_us > 0


class TestTrainingTuner:
    def test_scheme_selection_matches_paper(self):
        assert pick_binding_scheme("a100") is BindingScheme.BIND_DGRAD_WGRAD
        assert pick_binding_scheme("2080ti") is BindingScheme.BIND_FWD_DGRAD

    def test_decoupled_no_worse_than_bound(self, tiny_model):
        tiny_model.train()
        for scheme in (BindingScheme.BIND_FWD_DGRAD,
                       BindingScheme.BIND_DGRAD_WGRAD):
            _, report = TrainingTuner(scheme=scheme).tune(
                tiny_model, [cloud()], device="a100", precision="fp16"
            )
            assert report.end_to_end_us <= report.bound_all_us * (1 + 1e-9)

    def test_policy_assigns_roles(self, tiny_model):
        tiny_model.train()
        policy, _ = TrainingTuner(
            scheme=BindingScheme.BIND_FWD_DGRAD
        ).tune(tiny_model, [cloud()], device="2080ti", precision="fp16")
        sig = next(iter(policy._assignments))
        by_role = policy._assignments[sig]
        assert by_role[Role.FORWARD] == by_role[Role.DGRAD]


class TestPolicyCache:
    def test_roundtrip(self, tiny_model, tmp_path):
        policy, _ = SparseAutotuner().tune(
            tiny_model, [cloud()], device="3090", precision="fp16"
        )
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        loaded = load_policy(path)
        for sig, by_role in policy._assignments.items():
            for role, config in by_role.items():
                restored = loaded.config(sig, role)
                assert restored.dataflow == config.dataflow
                assert restored.ig_config == config.ig_config
                assert restored.schedule.tile_m == config.schedule.tile_m
