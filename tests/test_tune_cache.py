"""Round-trip tests for policy serialization (`repro.tune.cache`).

The deployment contract: a tuned policy written to JSON and loaded back
must assign the identical :class:`LayerConfig` to every (signature, role)
— and therefore produce the identical simulated end-to-end latency.
"""

import numpy as np
import pytest

from repro.models import MinkUNet
from repro.nn import ExecutionContext
from repro.nn.context import GroupPolicy, LayerConfig, Role
from repro.sparse import SparseTensor
from repro.tune import SparseAutotuner, load_policy, save_policy


def cloud(n=400, extent=18, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((len(coords), 4)).astype(np.float32)
    return SparseTensor(coords, feats)


@pytest.fixture(scope="module")
def tuned():
    model = MinkUNet(in_channels=4, num_classes=5, width=0.25)
    policy, report = SparseAutotuner().tune(
        model, [cloud()], device="3090", precision="fp16"
    )
    return model, policy, report


class TestPublicPolicyApi:
    def test_items_covers_all_signatures(self, tuned):
        _, policy, report = tuned
        assert len(policy) == len(report.groups)
        signatures = policy.signatures()
        assert set(signatures) == {sig for sig, _ in policy.items()}
        for signature, by_role in policy.items():
            assert Role.FORWARD in by_role
            assert policy.config(signature) == by_role[Role.FORWARD]

    def test_items_returns_copies(self, tuned):
        _, policy, _ = tuned
        signature, by_role = next(iter(policy.items()))
        original = by_role[Role.FORWARD]
        by_role[Role.FORWARD] = LayerConfig(tensor_cores=False)
        assert policy.config(signature) == original

    def test_default_property(self):
        default = LayerConfig(tensor_cores=False)
        policy = GroupPolicy({}, default=default)
        assert policy.default == default
        assert policy.config(("anything",)) == default


class TestRoundTrip:
    def test_configs_identical_after_round_trip(self, tuned, tmp_path):
        _, policy, _ = tuned
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        loaded = load_policy(path)
        assert len(loaded) == len(policy)
        for signature, by_role in policy.items():
            for role, config in by_role.items():
                assert loaded.config(signature, role) == config

    def test_simulated_latency_identical_after_round_trip(
        self, tuned, tmp_path
    ):
        model, policy, _ = tuned
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        loaded = load_policy(path)
        model.eval()
        latencies = []
        for p in (policy, loaded):
            ctx = ExecutionContext(
                device="3090", precision="fp16", policy=p, simulate_only=True
            )
            model(cloud(seed=7), ctx)  # a scene the tuner never saw
            latencies.append(ctx.latency_us())
        assert latencies[0] == latencies[1]

    def test_double_round_trip_stable(self, tuned, tmp_path):
        _, policy, _ = tuned
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_policy(policy, first)
        save_policy(load_policy(first), second)
        assert first.read_text() == second.read_text()

    def test_gs_chunks_survives_round_trip(self, tmp_path):
        """Regression: gs_chunks used to be silently dropped on save,
        so chunked gather-scatter policies reloaded unchunked."""
        from repro.kernels.registry import Dataflow

        config = LayerConfig(dataflow=Dataflow.GATHER_SCATTER, gs_chunks=4)
        policy = GroupPolicy({("sig",): {Role.FORWARD: config}})
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        loaded = load_policy(path)
        assert loaded.config(("sig",)).gs_chunks == 4
        assert loaded.config(("sig",)) == config

    def test_legacy_policy_without_gs_chunks_loads(self, tmp_path):
        """Policies written before gs_chunks existed load at the default."""
        import json

        config = LayerConfig()
        policy = GroupPolicy({("sig",): {Role.FORWARD: config}})
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        payload = json.loads(path.read_text())
        for by_role in payload.values():
            for cfg in by_role.values():
                del cfg["gs_chunks"]
        path.write_text(json.dumps(payload))
        loaded = load_policy(path)
        assert loaded.config(("sig",)).gs_chunks == 1
