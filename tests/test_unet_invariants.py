"""Property-based tests on U-Net structural invariants.

The decoder of a sparse U-Net must return to exactly the encoder's
coordinate systems (the property that makes skip connections an aligned
elementwise op and lets inverse convolutions reuse encoder maps).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ExecutionContext, SparseConv3d
from repro.sparse import SparseTensor
from repro.sparse.kmap import build_kernel_map


def cloud(seed, n=80, extent=16):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), np.int32),
             rng.integers(0, extent, (n, 3)).astype(np.int32)],
            axis=1,
        ),
        axis=0,
    )
    return SparseTensor(
        coords, rng.standard_normal((len(coords), 2)).astype(np.float32)
    )


class TestUNetCoordinateInvariants:
    @given(seed=st.integers(0, 200), depth=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_down_up_chain_returns_to_input_coords(self, seed, depth):
        x = cloud(seed)
        ctx = ExecutionContext(simulate_only=True)
        downs = [
            SparseConv3d(2, 2, kernel_size=2, stride=2, seed=i)
            for i in range(depth)
        ]
        ups = [
            SparseConv3d(2, 2, kernel_size=2, stride=2, transposed=True,
                         seed=10 + i)
            for i in range(depth)
        ]
        tensors = [x]
        for down in downs:
            tensors.append(down(tensors[-1], ctx))
        y = tensors[-1]
        for up, reference in zip(reversed(ups), reversed(tensors[:-1])):
            y = up(y, ctx)
            assert np.array_equal(y.coords, reference.coords)
            assert y.stride == reference.stride

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_downsample_halves_resolution(self, seed):
        x = cloud(seed)
        kmap = build_kernel_map(x.coords, kernel_size=2, stride=2)
        assert np.all(kmap.out_coords[:, 1:] % 2 == 0)
        # Every output cell contains at least one input.
        assert np.all(kmap.map_sizes.sum() == len(x.coords))
        assert kmap.num_outputs <= kmap.num_inputs

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_submanifold_identity_column_everywhere(self, seed):
        x = cloud(seed)
        kmap = build_kernel_map(x.coords, kernel_size=3)
        centre = kmap.volume // 2
        assert np.array_equal(
            kmap.nbmap[:, centre], np.arange(kmap.num_outputs)
        )

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_transposed_conv_is_adjoint(self, seed):
        """<conv(x), y> == <x, conv_T(y)> with shared weights — the linear-
        algebra identity dgrad correctness rests on."""
        x = cloud(seed, n=50, extent=8)
        down = SparseConv3d(2, 3, kernel_size=2, stride=2, seed=1)
        ctx = ExecutionContext(precision="fp32")
        y = down(x, ctx)
        rng = np.random.default_rng(seed + 1)
        cotangent = rng.standard_normal(y.feats.shape).astype(np.float32)

        # <conv(x), v>
        lhs = float((y.feats * cotangent).sum())

        # <x, conv_T(v)> via the transposed map with W^T.
        up = SparseConv3d(3, 2, kernel_size=2, stride=2, transposed=True)
        up.weight.data = np.ascontiguousarray(
            down.weight.data.transpose(0, 2, 1)
        )
        pulled = up(y.with_feats(cotangent), ctx)
        rhs = float((x.feats * pulled.feats).sum())
        assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-3)
