"""Tests for utilities (formatting, RNG, validation) and precision."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.precision import Precision, cast_features
from repro.utils import (
    as_rng,
    check_2d,
    check_dtype_floating,
    check_positive,
    check_same_length,
    format_si,
    format_table,
    geomean,
)


class TestPrecision:
    def test_parse_strings(self):
        assert Precision.parse("fp16") is Precision.FP16
        assert Precision.parse("FP32") is Precision.FP32
        assert Precision.parse("tf32") is Precision.TF32

    def test_parse_passthrough(self):
        assert Precision.parse(Precision.FP16) is Precision.FP16

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Precision.parse("int8")

    def test_dtypes_and_sizes(self):
        assert Precision.FP16.dtype == np.float16
        assert Precision.FP16.itemsize == 2
        assert Precision.TF32.dtype == np.float32
        assert Precision.FP32.itemsize == 4

    def test_accumulator_always_fp32(self):
        for p in Precision:
            assert p.accumulator_dtype == np.float32

    def test_cast_features(self):
        x = np.ones((3, 3), dtype=np.float64)
        assert cast_features(x, Precision.FP16).dtype == np.float16


class TestFormatting:
    def test_format_si(self):
        assert format_si(2.5e9) == "2.50G"
        assert format_si(1500, "B") == "1.50KB"
        assert format_si(3.2) == "3.20"
        assert format_si(1e13, digits=1) == "10.0T"

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_geomean_bounded_by_min_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len({len(l) for l in lines}) == 1  # all lines same width

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])


class TestRngAndValidation:
    def test_as_rng_seed_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_as_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_check_2d(self):
        with pytest.raises(ShapeError):
            check_2d(np.zeros(3), "x")
        arr = np.zeros((2, 2))
        assert check_2d(arr, "x") is arr

    def test_check_same_length(self):
        with pytest.raises(ShapeError):
            check_same_length(np.zeros(2), np.zeros(3), "a", "b")

    def test_check_dtype_floating(self):
        with pytest.raises(ShapeError):
            check_dtype_floating(np.zeros(2, dtype=np.int32), "x")

    def test_check_positive(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")
